// src/prof: trace reading, critical-path analysis, straggler attribution,
// kernel hotspot aggregation and the bench-suite regression comparator.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hadoop/engine.h"
#include "prof/critical_path.h"
#include "prof/kernels.h"
#include "prof/regress.h"
#include "prof/timeline.h"
#include "prof/trace_file.h"
#include "trace/chrome.h"
#include "trace/timeseries.h"

namespace {

using namespace hd;
using trace::Arg;

prof::TraceFile Roundtrip(const trace::ChromeTraceSink& sink) {
  std::ostringstream os;
  sink.Write(os);
  return prof::TraceFile::Parse(os.str());
}

TEST(TraceFile, ParsesSpansInstantsAndTrackNames) {
  trace::ChromeTraceSink sink;
  sink.NameProcess(3, "node2");
  sink.NameThread({3, 1}, "cpu0");
  sink.Span("task", "cpu_map", {3, 1}, 1.5, 2.25,
            {Arg::Int("task", 7), Arg::Str("label", "WC")});
  sink.Instant("sched", "forced_gpu", {3, 0}, 4.0, {Arg::Int("task", 7)});
  const prof::TraceFile tf = Roundtrip(sink);
  EXPECT_EQ(tf.ProcessName(3), "node2");
  EXPECT_EQ(tf.ThreadName(3, 1), "cpu0");
  ASSERT_EQ(tf.events().size(), 2u);
  const prof::TraceEvent& span = tf.events()[0];
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.category, "task");
  EXPECT_EQ(span.name, "cpu_map");
  EXPECT_NEAR(span.start_sec, 1.5, 1e-12);
  EXPECT_NEAR(span.dur_sec, 2.25, 1e-12);
  EXPECT_EQ(span.ArgNumber("task"), 7.0);
  EXPECT_EQ(span.ArgString("label"), "WC");
  EXPECT_EQ(span.ArgString("missing", "d"), "d");
  const prof::TraceEvent& inst = tf.events()[1];
  EXPECT_EQ(inst.phase, 'i');
  EXPECT_EQ(inst.dur_sec, 0.0);
  EXPECT_NEAR(inst.start_sec, 4.0, 1e-12);
}

TEST(TraceFile, RejectsNonTraceDocuments) {
  EXPECT_THROW(prof::TraceFile::Parse("{\"foo\": 1}"), std::runtime_error);
  EXPECT_THROW(prof::TraceFile::Parse("nonsense"), std::runtime_error);
}

// A hand-built span DAG with a known longest chain:
//   lane 1: t0 [0,5)   t2 [5,15)
//   lane 2: t1 [0,8)   t3 [9,17)   (scheduling gap 8..9)
//   job span [0,20): 17..20 is the shuffle/reduce tail.
// Walking back from 20: shuffle_reduce(3) <- t3(8) <- wait(1) <- t1(8).
trace::ChromeTraceSink BuildDag() {
  trace::ChromeTraceSink sink;
  sink.NameProcess(0, "jobtracker");
  sink.NameProcess(1, "node0");
  sink.Span("job", "jobA", {0, 0}, 0.0, 20.0,
            {Arg::Int("job", 0), Arg::Str("policy", "gpu-first"),
             Arg::Float("max_observed_speedup", 1.0)});
  sink.Span("task", "cpu_map", {1, 1}, 0.0, 5.0,
            {Arg::Int("job", 0), Arg::Int("task", 0)});
  sink.Span("task", "cpu_map", {1, 2}, 0.0, 8.0,
            {Arg::Int("job", 0), Arg::Int("task", 1)});
  sink.Span("task", "cpu_map", {1, 1}, 5.0, 10.0,
            {Arg::Int("job", 0), Arg::Int("task", 2)});
  sink.Span("task", "cpu_map", {1, 2}, 9.0, 8.0,
            {Arg::Int("job", 0), Arg::Int("task", 3)});
  return sink;
}

TEST(CriticalPath, FindsKnownLongestChainWithWaitAndReduceSegments) {
  const std::vector<prof::JobAnalysis> jobs =
      prof::AnalyzeJobs(Roundtrip(BuildDag()));
  ASSERT_EQ(jobs.size(), 1u);
  const prof::JobAnalysis& j = jobs[0];
  EXPECT_EQ(j.job_id, 0);
  EXPECT_EQ(j.name, "jobA");
  EXPECT_EQ(j.policy, "gpu-first");
  EXPECT_NEAR(j.makespan_sec, 20.0, 1e-12);
  ASSERT_EQ(j.tasks.size(), 4u);

  ASSERT_EQ(j.chain.size(), 4u);
  EXPECT_EQ(j.chain[0].kind, prof::ChainSegment::Kind::kTask);
  EXPECT_EQ(j.chain[0].task, 1);
  EXPECT_NEAR(j.chain[0].dur_sec, 8.0, 1e-9);
  EXPECT_EQ(j.chain[1].kind, prof::ChainSegment::Kind::kWait);
  EXPECT_NEAR(j.chain[1].dur_sec, 1.0, 1e-9);
  EXPECT_EQ(j.chain[2].kind, prof::ChainSegment::Kind::kTask);
  EXPECT_EQ(j.chain[2].task, 3);
  EXPECT_NEAR(j.chain[2].dur_sec, 8.0, 1e-9);
  EXPECT_EQ(j.chain[3].kind, prof::ChainSegment::Kind::kShuffleReduce);
  EXPECT_NEAR(j.chain[3].dur_sec, 3.0, 1e-9);
  // The chain tiles [start, end]: durations sum to the makespan.
  EXPECT_NEAR(j.ChainTotalSec(), j.makespan_sec, 1e-9);
  EXPECT_NEAR(j.ChainWaitSec(), 1.0, 1e-9);

  // Slack: off-chain tasks have the most; the chain's tail task the least.
  for (const prof::TaskRecord& t : j.tasks) {
    if (t.task == 0) EXPECT_NEAR(t.slack_sec, 15.0, 1e-9);
    if (t.task == 2) EXPECT_NEAR(t.slack_sec, 5.0, 1e-9);
    if (t.task == 3) EXPECT_NEAR(t.slack_sec, 3.0, 1e-9);
  }
}

TEST(CriticalPath, AttributesInputSkewOnSeededSkewedWorkload) {
  trace::ChromeTraceSink sink;
  sink.NameProcess(0, "jobtracker");
  sink.NameProcess(1, "node0");
  sink.Span("job", "skewed", {0, 0}, 0.0, 11.0,
            {Arg::Int("job", 0), Arg::Str("policy", "cpu-only"),
             Arg::Float("max_observed_speedup", 1.0)});
  // Three nominal 2 s tasks and one deterministic 9 s tail task: the
  // same-device median is 2 s, so the tail task is input-skewed.
  sink.Span("task", "cpu_map", {1, 1}, 0.0, 2.0,
            {Arg::Int("job", 0), Arg::Int("task", 0)});
  sink.Span("task", "cpu_map", {1, 2}, 0.0, 2.0,
            {Arg::Int("job", 0), Arg::Int("task", 1)});
  sink.Span("task", "cpu_map", {1, 2}, 2.0, 2.0,
            {Arg::Int("job", 0), Arg::Int("task", 2)});
  sink.Span("task", "cpu_map", {1, 1}, 2.0, 9.0,
            {Arg::Int("job", 0), Arg::Int("task", 3)});
  const std::vector<prof::JobAnalysis> jobs =
      prof::AnalyzeJobs(Roundtrip(sink));
  ASSERT_EQ(jobs.size(), 1u);
  const prof::JobAnalysis& j = jobs[0];
  ASSERT_FALSE(j.stragglers.empty());
  // Latest-ending chain task first: the skewed tail task.
  EXPECT_EQ(j.stragglers[0].task, 3);
  EXPECT_EQ(j.stragglers[0].cause, "input_skew");
  EXPECT_NEAR(j.stragglers[0].excess_sec, 7.0, 1e-9);  // 9 - median 2
  // The nominal task feeding it is neither skewed nor misplaced
  // (speedup 1.0 means the CPU was the right device).
  ASSERT_GE(j.stragglers.size(), 2u);
  EXPECT_EQ(j.stragglers[1].cause, "none");
}

TEST(CriticalPath, AttributesDevicePlacementWhenGpuWasFaster) {
  trace::ChromeTraceSink sink;
  sink.NameProcess(0, "jobtracker");
  sink.NameProcess(1, "node0");
  sink.Span("job", "placed", {0, 0}, 0.0, 6.0,
            {Arg::Int("job", 0), Arg::Str("policy", "gpu-first"),
             Arg::Float("max_observed_speedup", 6.0)});
  sink.Span("task", "cpu_map", {1, 1}, 0.0, 6.0,
            {Arg::Int("job", 0), Arg::Int("task", 0)});
  sink.Span("task", "gpu_map", {1, 3}, 0.0, 1.0,
            {Arg::Int("job", 0), Arg::Int("task", 1)});
  const std::vector<prof::JobAnalysis> jobs =
      prof::AnalyzeJobs(Roundtrip(sink));
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_FALSE(jobs[0].stragglers.empty());
  const prof::Straggler& s = jobs[0].stragglers[0];
  EXPECT_EQ(s.task, 0);
  EXPECT_EQ(s.cause, "device_placement");
  // A 6x GPU would have cut 6 s to 1 s: 5 s of tail time explained.
  EXPECT_NEAR(s.excess_sec, 5.0, 1e-9);
}

// The acceptance scenario: the Fig. 3 toy job (19 equal tasks, 2 CPU slots
// + 1 GPU at 6x) run under gpu-first and tail scheduling into one trace on
// disjoint pid ranges, exactly as bench/fig3_tail_example wires it.
TEST(CriticalPath, Fig3TailSchedulingChainSumsToMakespanAndBeatsGpuFirst) {
  trace::ChromeTraceSink sink;
  double makespans[2] = {0.0, 0.0};
  int i = 0;
  for (sched::Policy policy : {sched::Policy::kGpuFirst, sched::Policy::kTail}) {
    hadoop::CalibratedTaskSource::Params p;
    p.num_maps = 19;
    p.num_reducers = 0;
    p.cpu_task_sec = 12.0;
    p.gpu_task_sec = 2.0;
    p.variation = 0.0;
    hadoop::CalibratedTaskSource source(p);
    hadoop::ClusterConfig c;
    c.num_slaves = 1;
    c.map_slots_per_node = 2;
    c.gpus_per_node = 1;
    c.heartbeat_sec = 0.1;
    c.sink = &sink;
    c.trace_pid_base = policy == sched::Policy::kTail ? 0 : 100;
    makespans[i++] =
        hadoop::JobEngine(c, &source, policy).Run().makespan_sec;
  }

  const std::vector<prof::JobAnalysis> jobs =
      prof::AnalyzeJobs(Roundtrip(sink));
  ASSERT_EQ(jobs.size(), 2u);  // one per pid base, ordered by tracker pid
  const prof::JobAnalysis& tail = jobs[0];
  const prof::JobAnalysis& gpu_first = jobs[1];
  EXPECT_EQ(tail.policy, "tail");
  EXPECT_EQ(gpu_first.policy, "gpu-first");
  EXPECT_NEAR(gpu_first.makespan_sec, makespans[0], 1e-9);
  EXPECT_NEAR(tail.makespan_sec, makespans[1], 1e-9);

  for (const prof::JobAnalysis& j : {tail, gpu_first}) {
    EXPECT_EQ(static_cast<int>(j.tasks.size()), 19);
    // The acceptance criterion: chain span durations sum exactly to the
    // job makespan (the chain tiles the job interval).
    EXPECT_NEAR(j.ChainTotalSec(), j.makespan_sec, 1e-9) << j.policy;
    ASSERT_FALSE(j.chain.empty());
    EXPECT_NEAR(j.chain.back().start_sec + j.chain.back().dur_sec, j.end_sec,
                1e-9);
  }

  // Algorithm 2's benefit, quantified from the one trace: the tail run
  // forced tasks onto the GPU after onset and finished sooner.
  EXPECT_GT(tail.forced_gpu, 0);
  EXPECT_GT(tail.tail_tasks_rescued, 0);
  EXPECT_GE(tail.tail_onset_sec, 0.0);
  EXPECT_LT(tail.tail_onset_sec, tail.end_sec);
  EXPECT_EQ(gpu_first.forced_gpu, 0);
  EXPECT_LT(tail.tail_onset_sec, tail.makespan_sec);

  const std::vector<prof::PolicyComparison> cmp = prof::ComparePolicies(jobs);
  ASSERT_EQ(cmp.size(), 1u);
  EXPECT_EQ(cmp[0].baseline_policy, "gpu-first");
  EXPECT_NEAR(cmp[0].saved_sec, makespans[0] - makespans[1], 1e-9);
  EXPECT_GT(cmp[0].saved_sec, 0.0);
  EXPECT_GT(cmp[0].saved_fraction, 0.0);
}

// A faulted run's trace: retry/speculative/killed/failed attempts become
// "recovery" chain segments, and the chain — recovery included — still
// tiles the makespan exactly.
TEST(CriticalPath, RecoverySegmentsTileTheMakespanUnderFaults) {
  fault::FaultSpec s;
  s.seed = 23;
  s.crash_mttf_sec = 150.0;
  s.permanent_fraction = 0.0;
  s.restart_sec = 40.0;
  s.horizon_sec = 600.0;
  s.cpu_fail_prob = 0.15;
  s.gpu_fail_prob = 0.1;
  s.slow_node_prob = 0.3;
  const fault::FaultInjector inj(s);

  trace::ChromeTraceSink sink;
  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = 32;
  p.num_reducers = 0;
  p.cpu_task_sec = 10.0;
  p.gpu_task_sec = 2.0;
  p.variation = 0.0;
  hadoop::CalibratedTaskSource source(p);
  hadoop::ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 1.0;
  c.heartbeat_expiry_sec = 5.0;
  c.faults = &inj;
  c.speculation = true;
  c.max_task_attempts = 16;
  c.sink = &sink;
  const hadoop::JobResult r =
      hadoop::JobEngine(c, &source, sched::Policy::kTail).Run();
  ASSERT_GT(r.task_failures + r.killed_attempts, 0);  // faults engaged

  const std::vector<prof::JobAnalysis> jobs =
      prof::AnalyzeJobs(Roundtrip(sink));
  ASSERT_EQ(jobs.size(), 1u);
  const prof::JobAnalysis& j = jobs[0];
  // Every attempt — including failed, killed and speculative ones — is a
  // task record, so there are more records than map tasks.
  EXPECT_GT(static_cast<int>(j.tasks.size()), p.num_maps);
  EXPECT_EQ(j.retry_attempts + j.failed_attempts + j.killed_attempts > 0,
            true);
  EXPECT_EQ(static_cast<std::int64_t>(j.failed_attempts), r.task_failures);
  EXPECT_EQ(static_cast<std::int64_t>(j.killed_attempts), r.killed_attempts);
  EXPECT_EQ(static_cast<std::int64_t>(j.speculative_attempts),
            r.speculative_launched);

  // The acceptance criterion: with a "recovery" segment class in the walk,
  // chain segments still tile [start, end] exactly.
  EXPECT_NEAR(j.ChainTotalSec(), j.makespan_sec, 1e-9);
  ASSERT_FALSE(j.chain.empty());
  EXPECT_NEAR(j.chain.back().start_sec + j.chain.back().dur_sec, j.end_sec,
              1e-9);
  EXPECT_GE(j.ChainRecoverySec(), 0.0);
  EXPECT_LE(j.ChainRecoverySec(), j.makespan_sec + 1e-9);
  double tiled = 0.0;
  bool has_recovery = false;
  for (const prof::ChainSegment& seg : j.chain) {
    tiled += seg.dur_sec;
    if (seg.kind == prof::ChainSegment::Kind::kRecovery) {
      has_recovery = true;
      EXPECT_EQ(seg.name, "recovery");
      EXPECT_GE(seg.task, 0);
    }
  }
  EXPECT_NEAR(tiled, j.makespan_sec, 1e-9);
  EXPECT_EQ(j.ChainRecoverySec() > 0.0, has_recovery);

  // Fault instants parse as trace events (node_crash/node_recover live on
  // node lanes); the analysis must not choke on the new category.
  bool saw_fault_event = false;
  std::ostringstream os;
  sink.Write(os);
  saw_fault_event = os.str().find("node_crash") != std::string::npos;
  EXPECT_TRUE(saw_fault_event);
}

TEST(Kernels, AggregatesLaunchesAndRanksHotspots) {
  trace::ChromeTraceSink sink;
  for (int launch = 0; launch < 2; ++launch) {
    sink.Span("kernel", "map", {5, 1}, launch * 0.01, 0.002,
              {Arg::Float("device_cycles", 1000.0),
               Arg::Float("compute_cycles", 800.0),
               Arg::Float("mem_cycles", 300.0),
               Arg::Float("dram_roof_cycles", 200.0),
               Arg::Int("transactions", 40), Arg::Int("bytes_moved", 5120),
               Arg::Int("mem_requests", 100),
               Arg::Int("bytes_requested", 2560),
               Arg::Int("shared_accesses", 10),
               Arg::Int("shared_bank_conflicts", 3),
               Arg::Int("atomic_conflicts", 1),
               Arg::Float("divergence", 0.5),
               Arg::Float("texture_hit_rate", 0.9)});
  }
  sink.Span("kernel", "sort", {5, 1}, 0.02, 0.001,
            {Arg::Float("device_cycles", 500.0),
             Arg::Float("compute_cycles", 100.0),
             Arg::Float("mem_cycles", 200.0),
             Arg::Float("dram_roof_cycles", 500.0),
             Arg::Int("transactions", 80), Arg::Int("bytes_moved", 10240),
             Arg::Int("mem_requests", 40),
             Arg::Int("bytes_requested", 10240)});
  const prof::KernelProfile p = prof::ProfileKernels(Roundtrip(sink));
  ASSERT_EQ(p.kernels.size(), 2u);
  EXPECT_NEAR(p.total_sec, 0.005, 1e-12);
  const prof::KernelStats& map = p.kernels[0];  // hottest first
  EXPECT_EQ(map.name, "map");
  EXPECT_EQ(map.launches, 2);
  EXPECT_NEAR(map.total_sec, 0.004, 1e-12);
  EXPECT_EQ(map.transactions, 80);
  EXPECT_EQ(map.bytes_requested, 5120);
  EXPECT_EQ(map.shared_bank_conflicts, 6);
  EXPECT_EQ(map.atomic_conflicts, 2);
  EXPECT_NEAR(map.Divergence(), 0.5, 1e-12);
  EXPECT_NEAR(map.Coalescing(), 0.5, 1e-12);  // 5120 / 10240
  EXPECT_NEAR(map.TransactionsPerRequest(), 0.4, 1e-12);
  EXPECT_NEAR(map.TextureHitRate(), 0.9, 1e-12);
  EXPECT_EQ(map.Bound(), "compute");
  const prof::KernelStats& sort = p.kernels[1];
  EXPECT_EQ(sort.name, "sort");
  EXPECT_EQ(sort.Bound(), "dram");
  EXPECT_NEAR(sort.Coalescing(), 1.0, 1e-12);
  EXPECT_EQ(sort.TextureHitRate(), 0.0);
}

prof::Suite MakeSuite() {
  prof::Suite s;
  s.rev = "base";
  s.smoke = true;
  prof::BenchRun x;
  x.benchmark = "fig4a_cluster1";
  x.modeled_seconds = 100.0;
  x.metrics = {{"hadoop.cpu_tasks", 10.0}, {"hadoop.gpu_tasks", 5.0}};
  prof::BenchRun y;
  y.benchmark = "fig6_breakdown";
  y.modeled_seconds = 50.0;
  s.runs = {x, y};
  return s;
}

TEST(Regress, SuiteRoundTripsThroughJson) {
  const prof::Suite s = MakeSuite();
  std::ostringstream os;
  prof::WriteSuite(os, s);
  const prof::Suite back = prof::ParseSuite(os.str());
  EXPECT_EQ(back.rev, "base");
  EXPECT_TRUE(back.smoke);
  ASSERT_EQ(back.runs.size(), 2u);
  EXPECT_EQ(back.runs[0].benchmark, "fig4a_cluster1");
  EXPECT_EQ(back.runs[0].modeled_seconds, 100.0);
  ASSERT_EQ(back.runs[0].metrics.size(), 2u);
  EXPECT_EQ(back.runs[0].metrics[0].first, "hadoop.cpu_tasks");
  EXPECT_EQ(back.runs[0].metrics[0].second, 10.0);
  // Serialization is deterministic.
  std::ostringstream again;
  prof::WriteSuite(again, back);
  EXPECT_EQ(os.str(), again.str());
}

TEST(Regress, RejectsWrongSchema) {
  EXPECT_THROW(prof::ParseSuite("{\"schema\": \"other\", \"suite\": []}"),
               std::runtime_error);
  EXPECT_THROW(prof::RunFromBenchReport("{\"schema\": \"other\"}"),
               std::runtime_error);
}

TEST(Regress, IdenticalSuitesCompareClean) {
  const prof::Suite s = MakeSuite();
  const prof::CompareResult r = prof::Compare(s, s);
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.improvements, 0);
  EXPECT_FALSE(r.Failed());
}

TEST(Regress, DetectsInjectedRegressionWithAttribution) {
  const prof::Suite base = MakeSuite();
  prof::Suite cur = base;
  cur.rev = "cur";
  cur.runs[0].modeled_seconds = 110.0;          // +10% — beyond 1%
  cur.runs[0].metrics[1].second = 9.0;          // gpu_tasks 5 -> 9
  const prof::CompareResult r = prof::Compare(base, cur);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_TRUE(r.Failed());
  ASSERT_GE(r.deltas.size(), 2u);
  EXPECT_EQ(r.deltas[0].metric, "modeled_seconds");
  EXPECT_TRUE(r.deltas[0].scored);
  EXPECT_TRUE(r.deltas[0].regression);
  EXPECT_NEAR(r.deltas[0].rel_change, 0.10, 1e-12);
  // Per-metric attribution rides under the regressing benchmark.
  EXPECT_EQ(r.deltas[1].benchmark, "fig4a_cluster1");
  EXPECT_EQ(r.deltas[1].metric, "hadoop.gpu_tasks");
  EXPECT_FALSE(r.deltas[1].scored);
  EXPECT_FALSE(r.deltas[1].regression);
}

TEST(Regress, ImprovementsAndMissingBenchmarks) {
  const prof::Suite base = MakeSuite();
  prof::Suite faster = base;
  faster.runs[1].modeled_seconds = 40.0;  // -20%
  const prof::CompareResult ok = prof::Compare(base, faster);
  EXPECT_EQ(ok.regressions, 0);
  EXPECT_EQ(ok.improvements, 1);
  EXPECT_FALSE(ok.Failed());

  prof::Suite dropped = base;
  dropped.runs.pop_back();
  const prof::CompareResult bad = prof::Compare(base, dropped);
  ASSERT_EQ(bad.removed_benchmarks.size(), 1u);
  EXPECT_EQ(bad.removed_benchmarks[0], "fig6_breakdown");
  EXPECT_TRUE(bad.Failed());  // a vanished benchmark fails the gate

  const prof::CompareResult added = prof::Compare(dropped, base);
  ASSERT_EQ(added.added_benchmarks.size(), 1u);
  EXPECT_FALSE(added.Failed());  // new coverage is fine
}

prof::Suite MakePinnedSuite() {
  prof::Suite s = MakeSuite();
  prof::BenchRun d;
  d.benchmark = "des_scale";
  d.modeled_seconds = 300.0;
  d.metrics = {{"des.events_total", 2000001.0},
               {"pinned.des.events_per_sec", 4.0e7}};
  s.runs.push_back(d);
  return s;
}

TEST(Regress, PinnedMetricsTolerateWallClockNoise) {
  // "pinned." metrics are wall-clock throughput numbers; machine noise —
  // even a 2x swing either way — must not score at all under the default
  // generous pinned_threshold of 0.9.
  const prof::Suite base = MakePinnedSuite();
  prof::Suite halved = base;
  halved.runs[2].metrics[1].second = 2.0e7;  // events/sec 40M -> 20M
  const prof::CompareResult slow = prof::Compare(base, halved);
  EXPECT_TRUE(slow.deltas.empty());
  EXPECT_FALSE(slow.Failed());

  prof::Suite doubled = base;
  doubled.runs[2].metrics[1].second = 8.0e7;
  const prof::CompareResult fast = prof::Compare(base, doubled);
  EXPECT_TRUE(fast.deltas.empty());  // no improvement credit either
  EXPECT_FALSE(fast.Failed());
}

TEST(Regress, PinnedMetricCollapseIsAScoredRegression) {
  const prof::Suite base = MakePinnedSuite();
  prof::Suite collapsed = base;
  collapsed.runs[2].metrics[1].second = 2.0e6;  // 40M -> 2M: -95%
  const prof::CompareResult r = prof::Compare(base, collapsed);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_TRUE(r.Failed());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].benchmark, "des_scale");
  EXPECT_EQ(r.deltas[0].metric, "pinned.des.events_per_sec");
  EXPECT_TRUE(r.deltas[0].scored);
  EXPECT_TRUE(r.deltas[0].regression);
  EXPECT_NEAR(r.deltas[0].rel_change, -0.95, 1e-12);

  // A tighter --pinned-threshold turns the 50% dip into a failure too.
  prof::Suite halved = base;
  halved.runs[2].metrics[1].second = 2.0e7;
  prof::CompareOptions tight;
  tight.pinned_threshold = 0.3;
  const prof::CompareResult strict = prof::Compare(base, halved, tight);
  EXPECT_EQ(strict.regressions, 1);
  EXPECT_TRUE(strict.Failed());
}

TEST(Regress, DisappearedPinnedKeyScoresAsFullCollapse) {
  // Silently dropping the pin from the report must fail the gate even
  // though no number got worse — that is exactly what the pin guards.
  const prof::Suite base = MakePinnedSuite();
  prof::Suite unpinned = base;
  unpinned.runs[2].metrics.pop_back();
  const prof::CompareResult r = prof::Compare(base, unpinned);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_TRUE(r.Failed());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].metric, "pinned.des.events_per_sec");
  EXPECT_EQ(r.deltas[0].after, 0.0);
  EXPECT_NEAR(r.deltas[0].rel_change, -1.0, 1e-12);
}

TEST(Regress, PinnedMetricsNeverRideAsAttribution) {
  // When modeled_seconds regresses, shared metrics attribute the change —
  // but pinned wall-clock keys are excluded from attribution: they only
  // ever appear as their own scored rows.
  const prof::Suite base = MakePinnedSuite();
  prof::Suite cur = base;
  cur.runs[2].modeled_seconds = 330.0;       // +10% modeled regression
  cur.runs[2].metrics[1].second = 2.0e7;     // pinned halves (noise)
  const prof::CompareResult r = prof::Compare(base, cur);
  EXPECT_EQ(r.regressions, 1);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].metric, "modeled_seconds");
}

// Produce a real producer-side export and read it back through the hdprof
// timeline parser — the round trip covers both ends of the wire format.
std::string SampleExport() {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 2.0;
  trace::TimeSeries ts(opts);
  double work = 0.0, depth = 0.0;
  ts.AddCumulativeProbe("stream.clicks.records_arrived", [&] { return work; });
  ts.AddGaugeProbe("stream.clicks.queue_depth", [&] { return depth; });
  ts.AddGaugeProbe("cluster.running_attempts", [&] { return 3.0; });
  trace::SloRule r;
  r.name = "stream.clicks.queue_depth_high";
  r.kind = trace::SloRule::Kind::kAbove;
  r.series = "stream.clicks.queue_depth";
  r.threshold = 4.0;
  ts.slo().AddRule(r);
  for (int t = 1; t <= 10; ++t) {
    work += 10.0;
    depth = t >= 6 ? 6.0 : 1.0;  // backlog appears at t = 12 s
    ts.Sample(2.0 * t, nullptr, nullptr);
  }
  std::ostringstream os;
  ts.WriteJsonl(os);
  return os.str();
}

TEST(Timeline, ParsesProducerExportRoundTrip) {
  const prof::TimeSeriesFile f = prof::TimeSeriesFile::Parse(SampleExport());
  EXPECT_EQ(f.sample_interval_sec, 2.0);
  EXPECT_EQ(f.samples, 10);
  const prof::TsSeries* depth = f.Find("stream.clicks.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, "gauge");
  ASSERT_EQ(depth->points.size(), 10u);
  EXPECT_EQ(depth->points[0].first, 2.0);
  EXPECT_EQ(depth->Min(), 1.0);
  EXPECT_EQ(depth->Max(), 6.0);
  EXPECT_EQ(depth->Last(), 6.0);
  // SteadyMean covers the back half: samples 6..10 all sit at depth 6.
  EXPECT_EQ(depth->SteadyMean(), 6.0);
  const prof::TsSeries* rate = f.Find("stream.clicks.records_arrived.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind, "rate");
  EXPECT_EQ(rate->Last(), 5.0);  // 10 records per 2 s tick
  // The alert transition survived the round trip.
  ASSERT_EQ(f.alerts.size(), 1u);
  EXPECT_EQ(f.alerts[0].rule, "stream.clicks.queue_depth_high");
  EXPECT_EQ(f.alerts[0].state, "firing");
  EXPECT_EQ(f.alerts[0].t, 12.0);
}

TEST(Timeline, RejectsNonTimeseriesInput) {
  EXPECT_THROW(prof::TimeSeriesFile::Parse("{\"schema\": \"other\"}"),
               std::runtime_error);
  EXPECT_THROW(prof::TimeSeriesFile::Parse(""), std::runtime_error);
  EXPECT_THROW(
      prof::TimeSeriesFile::Parse(
          "{\"schema\": \"heterodoop.timeseries.v1\"}\n{\"no\": \"type\"}"),
      std::runtime_error);
}

TEST(Timeline, SparklineDownsamplesAndHandlesConstants) {
  std::vector<std::pair<double, double>> ramp;
  for (int i = 0; i < 100; ++i) {
    ramp.emplace_back(static_cast<double>(i), static_cast<double>(i));
  }
  const std::string s = prof::Sparkline(ramp, 10);
  EXPECT_EQ(s.size(), 10u);
  // Monotone input yields a non-decreasing glyph ramp ending at the top
  // (glyph order follows the brightness ramp, not ASCII codes).
  const std::string glyphs = "_.-:=*#%@";
  EXPECT_EQ(s.back(), '@');
  std::size_t prev = 0;
  for (char c : s) {
    const std::size_t level = glyphs.find(c);
    ASSERT_NE(level, std::string::npos) << s;
    EXPECT_GE(level, prev) << s;
    prev = level;
  }
  // Constant series render flat at the lowest glyph, never blank.
  const std::vector<std::pair<double, double>> flat(20, {0.0, 7.0});
  const std::string fs = prof::Sparkline(flat, 10);
  EXPECT_EQ(fs, std::string(10, '_'));
  // Fewer points than columns: one glyph per point.
  EXPECT_EQ(prof::Sparkline(flat, 60).size(), 20u);
  EXPECT_TRUE(prof::Sparkline({}, 10).empty());
}

TEST(Timeline, CompareDiffsSteadyStateMeans) {
  const prof::TimeSeriesFile before =
      prof::TimeSeriesFile::Parse(SampleExport());
  prof::TimeSeriesFile after = before;
  // Identical exports compare clean.
  const prof::CompareResult same =
      prof::CompareTimeSeries(before, after, 0.01);
  EXPECT_TRUE(same.deltas.empty());
  EXPECT_FALSE(same.Failed());
  // Doubling the steady-state queue depth surfaces as a delta; dropping a
  // series fails the compare like a removed benchmark.
  for (prof::TsSeries& s : after.series) {
    if (s.name == "stream.clicks.queue_depth") {
      for (auto& [t, v] : s.points) v *= 2.0;
    }
  }
  after.series.pop_back();  // whichever sorts last
  const prof::CompareResult r = prof::CompareTimeSeries(before, after, 0.01);
  ASSERT_FALSE(r.deltas.empty());
  bool saw_depth = false;
  for (const prof::Delta& d : r.deltas) {
    if (d.benchmark == "stream.clicks.queue_depth") {
      saw_depth = true;
      EXPECT_NEAR(d.rel_change, 1.0, 1e-12);
      EXPECT_FALSE(d.scored);  // attribution-only, never a regression count
    }
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_EQ(r.removed_benchmarks.size(), 1u);
  EXPECT_TRUE(r.Failed());
}

}  // namespace
