file(REMOVE_RECURSE
  "CMakeFiles/micro_gpurt.dir/micro_gpurt.cc.o"
  "CMakeFiles/micro_gpurt.dir/micro_gpurt.cc.o.d"
  "micro_gpurt"
  "micro_gpurt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gpurt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
