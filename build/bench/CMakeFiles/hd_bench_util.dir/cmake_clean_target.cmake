file(REMOVE_RECURSE
  "libhd_bench_util.a"
)
