// A compiled MapReduce job: the translated map filter, the optional
// translated combine filter, and the optional (CPU-only, §3.1) reduce
// filter. This is the unit the Hadoop layer distributes: the same compiled
// artifact serves both the CPU ("gcc") and GPU ("nvcc") execution paths.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "minic/ast.h"
#include "translator/translator.h"

namespace hd::gpurt {

struct JobProgram {
  translator::TranslatedProgram map;  // must carry a map plan
  std::optional<translator::TranslatedProgram> combine;
  // Plain streaming reducer (no directives); null for map-only jobs whose
  // output goes straight to HDFS.
  std::shared_ptr<minic::TranslationUnit> reduce;

  bool has_combiner() const { return combine.has_value(); }
  bool map_only() const { return reduce == nullptr && !has_combiner(); }
};

// Compiles the three filter sources. Empty strings mean "absent".
JobProgram CompileJob(const std::string& map_source,
                      const std::string& combine_source = "",
                      const std::string& reduce_source = "");

// As above with explicit translator knobs — e.g. infer_missing_directives
// to compile plain (pragma-free) map/combine filters via hdinfer synthesis.
JobProgram CompileJob(const std::string& map_source,
                      const std::string& combine_source,
                      const std::string& reduce_source,
                      const translator::TranslateOptions& options);

}  // namespace hd::gpurt
