// hdinfer: Casper-style directive synthesis for plain mini-C programs.
//
// The engine walks un-annotated loop nests in main(), classifies each
// candidate as map-emission / keyed-reduction / not-parallelizable, and
// synthesizes a complete `#pragma mapreduce` directive:
//
//   candidate discovery   a while loop reading records (getline/getRecord
//                         in the condition) is a mapper candidate; a block
//                         (or bare loop) consuming the sorted KV stream
//                         (scanf/getKV) is a combiner candidate
//   dependence test       loop-carried variables (minic::AnalyzeLoopDependence
//                         over the sema write sites) must be absent from a
//                         mapper; in a combiner they must be the key-group
//                         tracker or a commutative/associative accumulator
//                         (+, *, ++, min/max via guarded rebind, resets)
//   emission shape        key/value variables from the printf "k\tv\n"
//                         emission sites; keyin/valuein from the scanf
//                         fields; keylength/vallength from declared char[]
//                         capacities; kvpairs from the static emission count
//   placement hints       texture(...) for read-only indexed arrays (the
//                         same eligibility rule as hdlint's HD402);
//                         firstprivate(...) for accepted carried variables
//
// Every clause carries a provenance note (HD602) and the whole directive a
// summary note (HD601); rejections are structured HD6xx errors, never
// crashes. Correctness is pinned by round-trip equivalence tests: stripping
// the pragmas from every benchmark app, re-inferring, and comparing both
// kernel plans and executed map-task output byte-for-byte.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "minic/ast.h"

namespace hd::analysis {

struct InferOptions {
  // Name used in diagnostic locations ("<source>" for in-memory programs).
  std::string source_name = "<source>";
  // Remove pre-existing mapreduce pragmas before inference (re-infer from
  // scratch); otherwise annotated regions are left unchanged (HD610 note).
  bool strip_existing = false;
  // Emit one HD602 note per synthesized clause explaining where it came
  // from (suppressed by the translator's inference hook).
  bool provenance_notes = true;
};

// Classification of one candidate loop nest.
enum class LoopClass {
  kMapEmission,        // dependence-free record loop emitting KV pairs
  kKeyedReduction,     // sorted-stream consumer with reduction-only carries
  kNotParallelizable,  // carried dependence / no recognizable emission
};

const char* LoopClassName(LoopClass c);

struct InferredRegion {
  LoopClass cls = LoopClass::kNotParallelizable;
  bool is_mapper = false;
  // Line of the statement the directive attaches to (in the stripped
  // source's numbering).
  int line = 0;
  // Complete single-line directive text ("#pragma mapreduce mapper ...");
  // empty when the region was rejected or already annotated.
  std::string directive;
  bool already_annotated = false;
};

struct InferResult {
  // Parse of the (possibly stripped) input; null on HD001 parse failure.
  std::shared_ptr<minic::TranslationUnit> unit;
  std::vector<InferredRegion> regions;
  DiagnosticEngine diags;
  // The input with mapreduce pragmas removed (== input unless
  // strip_existing found any).
  std::string stripped_source;
  // stripped_source with every synthesized directive inserted (wrapped with
  // backslash continuations) directly above its region.
  std::string annotated_source;
  // No errors and at least one region is annotated or was synthesized.
  bool ok = false;
};

// Removes every `#pragma mapreduce` line, including backslash-continuation
// lines, leaving all other source text untouched.
std::string StripDirectives(const std::string& source);

// Runs the full synthesis pipeline over `source`.
InferResult InferDirectives(const std::string& source,
                            const InferOptions& opts = {});

}  // namespace hd::analysis
