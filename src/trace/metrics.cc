#include "trace/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/json.h"
#include "common/prng.h"
#include "common/stats.h"

namespace hd::trace {

void Distribution::Record(double x) {
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++count_;
  if (cap_ == 0 || static_cast<std::int64_t>(samples_.size()) < cap_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: the i-th sample (1-based count_) replaces a random
  // reservoir slot with probability cap/i. The SplitMix64 chain makes the
  // draw sequence a pure function of (seed, record index).
  rng_ = SplitMix64(rng_);
  const std::uint64_t j = rng_ % static_cast<std::uint64_t>(count_);
  if (j < static_cast<std::uint64_t>(cap_)) {
    samples_[static_cast<std::size_t>(j)] = x;
  }
}

void Distribution::SetReservoirCap(std::int64_t cap, std::uint64_t seed) {
  HD_CHECK_MSG(cap > 0, "reservoir cap must be positive, got " << cap);
  HD_CHECK_MSG(static_cast<std::int64_t>(samples_.size()) <= cap,
               "SetReservoirCap(" << cap << ") applied after "
                                  << samples_.size()
                                  << " samples were already retained");
  cap_ = cap;
  rng_ = SplitMix64(seed);
}

double Distribution::Min() const {
  HD_CHECK(count_ > 0);
  return min_;
}

double Distribution::Max() const {
  HD_CHECK(count_ > 0);
  return max_;
}

double Distribution::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Distribution::Percentile(double q) const {
  return stats::NearestRankPercentile(samples_, q);
}

WindowedDistribution::WindowedDistribution(double bucket_width_sec)
    : width_(bucket_width_sec) {
  HD_CHECK_MSG(std::isfinite(width_) && width_ > 0.0,
               "WindowedDistribution bucket width must be positive, got "
                   << width_);
}

std::int64_t WindowedDistribution::BucketIndex(double t) const {
  return static_cast<std::int64_t>(std::floor(t / width_));
}

void WindowedDistribution::Record(double t, double x) {
  buckets_[BucketIndex(t)].push_back(x);
}

WindowSummary WindowedDistribution::Summarize(std::int64_t k) {
  WindowSummary s;
  const auto it = buckets_.find(k);
  if (it == buckets_.end() || it->second.empty()) {
    if (it != buckets_.end()) buckets_.erase(it);
    return s;
  }
  const std::vector<double>& v = it->second;
  s.count = static_cast<std::int64_t>(v.size());
  s.min = *std::min_element(v.begin(), v.end());
  s.mean = stats::Mean(v);
  s.p50 = stats::NearestRankPercentile(v, 0.50);
  s.p99 = stats::NearestRankPercentile(v, 0.99);
  s.max = *std::max_element(v.begin(), v.end());
  buckets_.erase(it);
  return s;
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Distribution& Registry::distribution(std::string_view name) {
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.emplace(std::string(name), Distribution{}).first;
  }
  return it->second;
}

const Counter* Registry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Distribution* Registry::FindDistribution(std::string_view name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

void Registry::WriteJson(std::ostream& os) const {
  json::Writer w(os);
  w.BeginObject();
  // The three maps are each name-sorted; a merged walk keeps the whole
  // document sorted by key (counter/gauge/distribution names never clash
  // by convention — suffixed distribution keys sort adjacent regardless).
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto d = distributions_.begin();
  auto next_is_counter = [&] {
    if (c == counters_.end()) return false;
    if (g != gauges_.end() && g->first < c->first) return false;
    if (d != distributions_.end() && d->first < c->first) return false;
    return true;
  };
  auto next_is_gauge = [&] {
    if (g == gauges_.end()) return false;
    if (d != distributions_.end() && d->first < g->first) return false;
    return true;
  };
  while (c != counters_.end() || g != gauges_.end() ||
         d != distributions_.end()) {
    if (next_is_counter()) {
      w.Key(c->first).Int(c->second.value());
      ++c;
    } else if (next_is_gauge()) {
      w.Key(g->first).Number(g->second.value());
      ++g;
    } else {
      const auto& [name, dist] = *d;
      w.Key(name + ".count").Int(dist.count());
      if (dist.count() > 0) {
        w.Key(name + ".min").Number(dist.Min());
        w.Key(name + ".mean").Number(dist.Mean());
        w.Key(name + ".p50").Number(dist.Percentile(0.50));
        w.Key(name + ".p95").Number(dist.Percentile(0.95));
        w.Key(name + ".p99").Number(dist.Percentile(0.99));
        w.Key(name + ".p999").Number(dist.Percentile(0.999));
        w.Key(name + ".max").Number(dist.Max());
        w.Key(name + ".sum").Number(dist.Sum());
      }
      ++d;
    }
  }
  w.EndObject();
  os << '\n';
}

}  // namespace hd::trace
