// SequenceFile-style binary KV container (§5.2): the GPU driver writes its
// map+combine output to local disk "in a Hadoop-compatible binary format
// (SequenceFileFormat)". This is a faithful *framing* implementation — a
// magic header, length-prefixed key/value records, periodic sync markers,
// and a CRC32 per block — not Hadoop's exact on-disk bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpurt/kv.h"

namespace hd::gpurt {

class SeqFileError : public std::runtime_error {
 public:
  explicit SeqFileError(const std::string& what) : std::runtime_error(what) {}
};

// CRC-32 (IEEE 802.3, reflected) over a byte range.
std::uint32_t Crc32(const void* data, std::size_t len);

class SeqFileWriter {
 public:
  // `sync_interval` records between sync markers (Hadoop uses ~bytes; a
  // record count keeps the format simple).
  explicit SeqFileWriter(int sync_interval = 64);

  void Append(const KvPair& kv);
  void Append(const std::vector<KvPair>& pairs);

  // Finalises the trailer (record count + whole-file CRC) and returns the
  // serialised bytes.
  std::string Finish();

  std::int64_t records_written() const { return records_; }

 private:
  void PutU32(std::uint32_t v);
  void PutBytes(const std::string& s);

  int sync_interval_;
  std::int64_t records_ = 0;
  std::string buf_;
  bool finished_ = false;
};

// Streaming reader over SeqFileWriter output; verifies framing and CRC.
class SeqFileReader {
 public:
  explicit SeqFileReader(std::string bytes);

  // Returns false at end of data. Throws SeqFileError on corruption.
  bool Next(KvPair* kv);

  std::int64_t records_read() const { return records_; }

 private:
  std::uint32_t GetU32();
  std::string GetBytes(std::uint32_t len);

  std::string bytes_;
  std::size_t pos_ = 0;
  std::int64_t records_ = 0;
  std::int64_t expected_records_ = -1;
};

// Convenience: full round trips.
std::string WriteSeqFile(const std::vector<KvPair>& pairs);
std::vector<KvPair> ReadSeqFile(const std::string& bytes);

}  // namespace hd::gpurt
