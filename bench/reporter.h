// The shared bench reporting API.
//
// Every figure/table binary builds its output through one Reporter instead
// of private std::cout formatting. The human-readable aligned tables stay
// the default; the same rows additionally serialize to a stable JSON
// schema and the run's trace::Sink events to a Chrome trace file:
//
//   <bench>                         # aligned tables on stdout (as before)
//   <bench> --json out.json         # + machine-readable report
//   <bench> --trace-out out.trace   # + Perfetto-loadable event trace
//                                   #   (--trace remains as an alias)
//   <bench> --metrics-out out.json  # + just the flat metrics registry
//   <bench> --timeseries-out out.jsonl  # + live telemetry sampled over
//                                   #   modeled time (heterodoop.timeseries.v1
//                                   #   JSONL; feed to `hdprof timeline`)
//   <bench> --sample-interval SEC   # telemetry sampling period (default 5)
//   <bench> --fail-on-alert         # exit nonzero if any SLO alert fired
//                                   #   (pairs with --timeseries-out)
//   <bench> --smoke                 # shrunk inputs for fast schema checks
//   <bench> --quiet                 # suppress the human output
//   <bench> --seed N                # workload/injector seed (binaries that
//                                   #   sample read it via seed(default))
//   <bench> --policy NAME           # restrict to one per-job sched::Policy
//   <bench> --scheduler NAME        # restrict to one inter-job scheduler
//
// JSON schema "heterodoop.bench.v1" (all keys always present):
//   {
//     "schema": "heterodoop.bench.v1",
//     "benchmark": "<binary id>",
//     "smoke": <bool>,
//     "config": { <flat string/number/bool settings> },
//     "modeled_seconds": <total modeled simulated time reported>,
//     "rows": [ {"table": "<table title>", "<column>": <typed cell>, ...} ],
//     "metrics": { <flat trace::Registry export> },
//     "alerts": [ {"t": <sec>, "rule": "<name>", "state": "firing"|"resolved",
//                  "value": <number>}, ... ]   # empty without --timeseries-out
//   }
//
// Determinism: cells are serialized with shortest-round-trip number
// formatting and tables/rows in insertion order, so same-seed runs write
// byte-identical reports.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "trace/timeseries.h"
#include "trace/trace.h"

namespace hd::bench {

inline constexpr const char* kSchema = "heterodoop.bench.v1";

// One table of the report: typed cells for the JSON rows plus the
// human-formatted rendering. The Cell overloads mirror hd::Table.
class ReportTable {
 public:
  ReportTable(std::string title, std::vector<std::string> columns);

  ReportTable& Row();
  ReportTable& Cell(std::string v);
  ReportTable& Cell(const char* v);
  ReportTable& Cell(double v, int precision = 2);
  ReportTable& Cell(std::uint64_t v);
  ReportTable& Cell(std::int64_t v);
  ReportTable& Cell(int v);

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

  // Renders the aligned human table (header, rule, rows).
  void PrintHuman(std::ostream& os) const;

 private:
  friend class Reporter;
  void Push(json::Value v, std::string human);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<json::Value>> rows_;
  std::vector<std::vector<std::string>> human_rows_;
};

// Owns the run's report state: parsed flags, tables, config echo, the
// metrics registry, and (when --trace is given) the Chrome trace sink.
class Reporter {
 public:
  // Parses --json/--trace-out/--metrics-out/--quiet/--smoke from argv
  // (--trace accepted as an alias of --trace-out); prints usage and
  // exits(2) on unknown arguments. `benchmark_id` names the binary in the
  // report ("fig6_breakdown").
  Reporter(std::string benchmark_id, int argc, char** argv);
  ~Reporter();
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  bool smoke() const { return smoke_; }
  bool quiet() const { return quiet_; }

  // The public --seed flag, shared by every bench binary: returns the
  // parsed value, or `fallback` when --seed was not given. Deterministic
  // binaries ignore it; sampling binaries (fault_sweep, stream_steady)
  // must draw every stochastic input from it and echo it under config.
  std::uint64_t seed(std::uint64_t fallback) const {
    return has_seed_ ? seed_ : fallback;
  }

  // --policy / --scheduler: named selections for binaries that sweep
  // scheduling dimensions. Empty (the default) means "sweep everything";
  // a name is resolved by the binary through sched::MakePolicy /
  // multijob::MakeScheduler, which reject unknown names listing the valid
  // ones. Binaries without the dimension ignore the flag.
  const std::string& policy() const { return policy_; }
  const std::string& scheduler() const { return scheduler_; }

  // Null when --trace-out was not given: instrumentation stays disabled and
  // modeled numbers are guaranteed bit-identical to an untraced run.
  trace::Sink* sink();
  // Always available: the registry the run's tasks/engines fill; exported
  // under "metrics".
  trace::Registry* metrics() { return &registry_; }
  // Null when --timeseries-out was not given (the sampler convention, same
  // as sink()): hand it to ClusterConfig::timeseries on the run whose
  // telemetry should be exported. Its sample interval is --sample-interval.
  trace::TimeSeries* timeseries() { return timeseries_.get(); }
  double sample_interval_sec() const { return sample_interval_; }

  // Free-text human output (headings, reading guides); /dev/null-like
  // under --quiet.
  std::ostream& out();

  // Registers a table; the reference stays valid for the Reporter's
  // lifetime. Tables appear in the JSON rows in registration order.
  ReportTable& AddTable(std::string title, std::vector<std::string> columns);
  // Prints the aligned table to out() (call at the natural point in the
  // human output flow).
  void Print(const ReportTable& t);

  // Flat config echo (cluster sizes, seeds, device names...).
  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, const char* value);
  void Config(const std::string& key, double value);
  void Config(const std::string& key, std::int64_t value);
  void Config(const std::string& key, int value);
  void Config(const std::string& key, bool value);

  // Accumulates the report's total modeled simulated seconds.
  void AddModeledSeconds(double sec) { modeled_seconds_ += sec; }
  double modeled_seconds() const { return modeled_seconds_; }

  // Writes the JSON report and trace file if requested. Idempotent; the
  // destructor calls it. Returns main's exit code: 0, or 1 when
  // --fail-on-alert was given and an SLO alert fired during the run.
  int Finish();

 private:
  std::string benchmark_id_;
  bool smoke_ = false;
  bool quiet_ = false;
  bool has_seed_ = false;
  std::uint64_t seed_ = 0;
  std::string policy_;
  std::string scheduler_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeseries_path_;
  double sample_interval_ = 5.0;
  bool fail_on_alert_ = false;
  bool finished_ = false;
  int exit_code_ = 0;
  double modeled_seconds_ = 0.0;

  trace::Registry registry_;
  std::unique_ptr<trace::ChromeTraceSink> chrome_;
  std::unique_ptr<trace::TimeSeries> timeseries_;
  std::vector<std::unique_ptr<ReportTable>> tables_;
  std::vector<std::pair<std::string, json::Value>> config_;
  std::unique_ptr<std::ostream> null_out_;
};

}  // namespace hd::bench
