// The global KV store (§4.1/§4.3): a statically allocated device region in
// which every map-kernel thread owns a contiguous portion of fixed-size
// key/value slots. Threads that emit fewer pairs than their portion leave
// whitespace — empty slots scattered between portions — which the
// aggregation pass (parallel scan + index rewrite, §5.3) compacts away
// before the intermediate sort.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "gpurt/kv.h"
#include "gpusim/kernel.h"

namespace hd::gpurt {

class GlobalKvStore {
 public:
  GlobalKvStore(int num_threads, std::int64_t total_slots, int key_slot_bytes,
                int val_slot_bytes);

  int num_threads() const { return num_threads_; }
  std::int64_t total_slots() const { return total_slots_; }
  std::int64_t slots_per_thread() const { return slots_per_thread_; }
  int key_slot_bytes() const { return key_slot_bytes_; }
  int val_slot_bytes() const { return val_slot_bytes_; }
  std::int64_t slot_bytes() const { return key_slot_bytes_ + val_slot_bytes_; }
  std::int64_t store_bytes() const { return total_slots_ * slot_bytes(); }

  // Appends a pair to `thread`'s portion. HD_CHECKs slot capacity and the
  // declared slot widths (a key longer than its slot is a program bug the
  // keylength clause should have prevented).
  void Emit(int thread, KvPair kv);

  std::int64_t CountFor(int thread) const;
  bool Full(int thread) const;
  std::int64_t total_emitted() const { return total_emitted_; }

  // Empty slots inside the bounding box of used slots — what the sort
  // would have to wade through without aggregation.
  std::int64_t max_count_per_thread() const;
  std::int64_t UsedBoundingBoxSlots() const;
  std::int64_t WhitespaceSlots() const;

  // Charges the aggregation pass: a work-efficient parallel scan over the
  // per-thread counts plus one indirection-array rewrite per real pair.
  void ChargeAggregation(gpusim::KernelSim& kernel) const;

  // All pairs in thread order (the order the compacted indirection array
  // yields). Leaves the store empty.
  std::vector<KvPair> TakeAll();

 private:
  int num_threads_;
  std::int64_t total_slots_;
  std::int64_t slots_per_thread_;
  int key_slot_bytes_;
  int val_slot_bytes_;
  std::vector<std::vector<KvPair>> portions_;
  std::int64_t total_emitted_ = 0;
};

}  // namespace hd::gpurt
