#include "stream/source.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hd::stream {

namespace {
constexpr double kPi = 3.141592653589793;
}  // namespace

const char* RateShapeName(RateShape s) {
  switch (s) {
    case RateShape::kPoisson: return "poisson";
    case RateShape::kBursty: return "bursty";
    case RateShape::kDiurnal: return "diurnal";
    case RateShape::kReplay: return "replay";
  }
  return "?";
}

void ValidateSourceSpec(const SourceSpec& spec) {
  if (spec.shape == RateShape::kReplay) {
    for (double g : spec.replay_gaps) {
      HD_CHECK_MSG(g >= 0.0, "replay gaps must be non-negative");
    }
    return;
  }
  HD_CHECK_MSG(spec.mean_rate_per_sec > 0.0, "mean rate must be positive");
  if (spec.shape == RateShape::kBursty) {
    HD_CHECK_MSG(spec.burst_period_sec > 0.0, "burst period must be positive");
    HD_CHECK_MSG(spec.burst_duty > 0.0 && spec.burst_duty < 1.0,
                 "burst duty must lie in (0, 1)");
    HD_CHECK_MSG(spec.burst_factor >= 1.0, "burst factor must be >= 1");
    HD_CHECK_MSG(spec.burst_factor * spec.burst_duty <= 1.0,
                 "burst factor x duty must be <= 1 (mean preservation)");
  }
  if (spec.shape == RateShape::kDiurnal) {
    HD_CHECK_MSG(spec.diurnal_period_sec > 0.0,
                 "diurnal period must be positive");
    HD_CHECK_MSG(
        spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0,
        "diurnal amplitude must lie in [0, 1)");
  }
}

ArrivalSource::ArrivalSource(SourceSpec spec)
    : spec_(std::move(spec)),
      prng_(SplitMix64(spec_.seed ^ 0x73747265616d00ULL)) {  // "stream"
  ValidateSourceSpec(spec_);
}

double ArrivalSource::RateAt(double t) const {
  switch (spec_.shape) {
    case RateShape::kPoisson:
      return spec_.mean_rate_per_sec;
    case RateShape::kBursty: {
      const double phase =
          t - std::floor(t / spec_.burst_period_sec) * spec_.burst_period_sec;
      const bool on = phase < spec_.burst_duty * spec_.burst_period_sec;
      if (on) return spec_.mean_rate_per_sec * spec_.burst_factor;
      // The off-rate compensates the burst so the long-run mean holds.
      return spec_.mean_rate_per_sec *
             (1.0 - spec_.burst_factor * spec_.burst_duty) /
             (1.0 - spec_.burst_duty);
    }
    case RateShape::kDiurnal:
      return spec_.mean_rate_per_sec *
             (1.0 + spec_.diurnal_amplitude *
                        std::sin(2.0 * kPi * t / spec_.diurnal_period_sec));
    case RateShape::kReplay:
      return 0.0;  // rate is meaningless for replay
  }
  return 0.0;
}

double ArrivalSource::PeakRate() const {
  switch (spec_.shape) {
    case RateShape::kPoisson:
      return spec_.mean_rate_per_sec;
    case RateShape::kBursty:
      return spec_.mean_rate_per_sec * spec_.burst_factor;
    case RateShape::kDiurnal:
      return spec_.mean_rate_per_sec * (1.0 + spec_.diurnal_amplitude);
    case RateShape::kReplay:
      return 0.0;
  }
  return 0.0;
}

double ArrivalSource::NextArrival(double t) {
  if (spec_.shape == RateShape::kReplay) {
    if (replay_next_ >= spec_.replay_gaps.size()) {
      return std::numeric_limits<double>::infinity();
    }
    return t + spec_.replay_gaps[replay_next_++];
  }
  // Lewis–Shedler thinning: draw candidate arrivals at the peak rate and
  // accept each with probability rate(t)/peak. Every draw comes from the
  // per-source Prng in a fixed order, so the sequence is bit-reproducible.
  const double peak = PeakRate();
  for (;;) {
    double u = prng_.NextDouble();
    while (u >= 1.0 - 1e-16) u = prng_.NextDouble();  // guard log(0)
    t += -std::log(1.0 - u) / peak;
    if (prng_.NextDouble() * peak <= RateAt(t)) return t;
  }
}

}  // namespace hd::stream
