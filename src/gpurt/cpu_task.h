// The CPU ("gcc") execution path: the unmodified streaming filter runs on
// one core through the interpreter, with Hadoop's per-task sort and the
// combiner applied by the framework — baseline Hadoop Streaming behaviour.
#pragma once

#include <string>

#include "gpurt/io_config.h"
#include "gpurt/job_program.h"
#include "gpurt/task_result.h"
#include "gpusim/config.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hd::gpurt {

struct CpuTaskOptions {
  int num_reducers = 1;  // <= 0 selects a map-only job
  IoConfig io;

  // Observability (src/trace); null = off, see GpuTaskOptions. Phase spans
  // land on `track` in task-local modeled seconds offset by
  // `trace_origin_sec`.
  trace::Sink* sink = nullptr;
  trace::Registry* metrics = nullptr;
  trace::Track track;
  double trace_origin_sec = 0.0;
};

class CpuMapTask {
 public:
  CpuMapTask(const JobProgram& job, const gpusim::CpuConfig& cpu,
             CpuTaskOptions options);

  MapTaskResult Run(const std::string& file_split);

 private:
  const JobProgram& job_;
  const gpusim::CpuConfig& cpu_;
  CpuTaskOptions opts_;
};

// Runs a streaming reduce program over an already merged-and-sorted pair
// stream (the framework's sort phase output); returns the emitted lines and
// the modeled single-core seconds.
struct ReduceResult {
  std::vector<KvPair> output;
  double seconds = 0.0;
};
ReduceResult RunReduce(const minic::TranslationUnit& reduce_unit,
                       const std::vector<KvPair>& sorted_pairs,
                       const gpusim::CpuConfig& cpu);

}  // namespace hd::gpurt
