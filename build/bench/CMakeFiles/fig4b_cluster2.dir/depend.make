# Empty dependencies file for fig4b_cluster2.
# This may be replaced when dependencies are built.
