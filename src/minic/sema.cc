#include "minic/sema.h"

#include <functional>
#include <vector>

#include "common/check.h"

namespace hd::minic {
namespace {

// Builtins that only *write* through their pointer argument at the given
// position; passing an outer array there does not force firstprivate.
bool BuiltinWritesArg(const std::string& callee, std::size_t arg_index) {
  if (callee == "strcpy" || callee == "strncpy" || callee == "sprintf" ||
      callee == "memset") {
    return arg_index == 0;
  }
  if (callee == "getline") return arg_index <= 1;
  if (callee == "scanf") return arg_index >= 1;
  return false;
}

// Tracks per-variable first-access direction while walking the region.
class RegionWalker {
 public:
  RegionWalker(const std::map<std::string, Type>& visible, RegionInfo* out)
      : visible_(visible), out_(out) {
    scopes_.emplace_back();
  }

  void WalkStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        WalkExpr(*s.expr, Access::kRead);
        break;
      case StmtKind::kDecl:
        for (const auto& d : s.decls) {
          if (d.init) WalkExpr(*d.init, Access::kRead);
          scopes_.back().insert(d.name);
        }
        break;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (const auto& sub : s.stmts) WalkStmt(*sub);
        scopes_.pop_back();
        break;
      case StmtKind::kIf:
        WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.then_stmt);
        if (s.else_stmt) WalkStmt(*s.else_stmt);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.body);
        break;
      case StmtKind::kFor:
        scopes_.emplace_back();
        if (s.init_stmt) WalkStmt(*s.init_stmt);
        if (s.expr) WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.body);
        if (s.step) WalkExpr(*s.step, Access::kRead);
        scopes_.pop_back();
        break;
      case StmtKind::kReturn:
        if (s.expr) WalkExpr(*s.expr, Access::kRead);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
  }

  const std::set<std::string>& written() const { return written_; }

  // Resolves the pending constant-index flags once the full write set is
  // known: an element write is region-constant-indexed when the index uses
  // only literals and outer variables the region never modifies.
  void Finalize() {
    for (const auto& p : pending_) {
      bool constant = !p.index_complex;
      for (const auto& v : p.index_vars) {
        if (!out_->used_outer.count(v) || written_.count(v)) {
          constant = false;
          break;
        }
      }
      auto& site = out_->write_sites[p.name][p.site_index];
      site.constant_index = site.element && constant;
    }
  }

 private:
  enum class Access { kRead, kWrite, kReadWrite };

  // Deferred constant-index classification for one element write.
  struct PendingWrite {
    std::string name;
    std::size_t site_index = 0;
    std::vector<std::string> index_vars;
    bool index_complex = false;  // index contains a call/deref: give up
  };

  bool DeclaredInside(const std::string& name) const {
    for (const auto& sc : scopes_) {
      if (sc.count(name)) return true;
    }
    return false;
  }

  void Note(const std::string& name, Access acc, const Expr& at) {
    if (DeclaredInside(name)) return;
    auto it = visible_.find(name);
    if (it == visible_.end()) return;  // builtin constant or function name
    if (out_->used_outer.insert(name).second) {
      out_->first_use.emplace(name, std::pair{at.line, at.col});
    }
    out_->outer_types.emplace(name, it->second);
    if (acc != Access::kWrite && !written_.count(name)) {
      out_->read_before_write.insert(name);
    }
    if (acc != Access::kRead) written_.insert(name);
  }

  void CollectIndexVars(const Expr& e, PendingWrite* p) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kSizeof:
        return;
      case ExprKind::kVarRef:
        p->index_vars.push_back(e.string_value);
        return;
      case ExprKind::kBinary:
        CollectIndexVars(*e.a, p);
        CollectIndexVars(*e.b, p);
        return;
      case ExprKind::kCast:
        CollectIndexVars(*e.a, p);
        return;
      case ExprKind::kUnary:
        if (e.un_op == UnOp::kNeg || e.un_op == UnOp::kNot ||
            e.un_op == UnOp::kBitNot) {
          CollectIndexVars(*e.a, p);
          return;
        }
        p->index_complex = true;
        return;
      default:
        p->index_complex = true;
        return;
    }
  }

  // Records a write site for the base variable of `lhs` (drilling through
  // casts, indexing, and dereferences). Direction bookkeeping is separate —
  // this only feeds RegionInfo::write_sites.
  void RecordWrite(const Expr& lhs, bool compound, bool via_builtin) {
    const Expr* base = &lhs;
    bool element = false;
    const Expr* index = nullptr;
    for (;;) {
      if (base->kind == ExprKind::kCast) {
        base = base->a.get();
      } else if (base->kind == ExprKind::kIndex) {
        element = true;
        index = base->b.get();
        base = base->a.get();
      } else if (base->kind == ExprKind::kUnary &&
                 base->un_op == UnOp::kDeref) {
        element = true;
        base = base->a.get();
      } else {
        break;
      }
    }
    if (base->kind != ExprKind::kVarRef) return;
    const std::string& name = base->string_value;
    if (DeclaredInside(name) || !visible_.count(name)) return;
    WriteSite ws;
    ws.line = lhs.line;
    ws.col = lhs.col;
    ws.compound = compound;
    ws.element = element;
    ws.via_builtin = via_builtin;
    PendingWrite p;
    p.name = name;
    p.site_index = out_->write_sites[name].size();
    if (index != nullptr) CollectIndexVars(*index, &p);
    pending_.push_back(std::move(p));
    out_->write_sites[name].push_back(ws);
  }

  void WalkExpr(const Expr& e, Access acc) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
        return;
      case ExprKind::kVarRef:
        Note(e.string_value, acc, e);
        return;
      case ExprKind::kIndex:
        // base[idx]: the base array is touched with direction `acc`; the
        // index is always read.
        if (e.a->kind == ExprKind::kVarRef && acc != Access::kWrite &&
            !DeclaredInside(e.a->string_value) &&
            visible_.count(e.a->string_value)) {
          out_->indexed_read.insert(e.a->string_value);
        }
        WalkExpr(*e.a, acc);
        WalkExpr(*e.b, Access::kRead);
        return;
      case ExprKind::kUnary:
        switch (e.un_op) {
          case UnOp::kPreInc: case UnOp::kPreDec:
          case UnOp::kPostInc: case UnOp::kPostDec:
            RecordWrite(*e.a, /*compound=*/true, /*via_builtin=*/false);
            WalkExpr(*e.a, Access::kReadWrite);
            return;
          case UnOp::kAddrOf:
            // Taking the address escapes the variable: conservatively
            // read-write (except as handled in call args below).
            RecordWrite(*e.a, /*compound=*/true, /*via_builtin=*/false);
            WalkExpr(*e.a, Access::kReadWrite);
            return;
          case UnOp::kDeref:
            WalkExpr(*e.a, acc == Access::kWrite ? Access::kReadWrite : acc);
            return;
          default:
            WalkExpr(*e.a, Access::kRead);
            return;
        }
      case ExprKind::kBinary:
        WalkExpr(*e.a, Access::kRead);
        WalkExpr(*e.b, Access::kRead);
        return;
      case ExprKind::kAssign:
        // The RHS is evaluated before the store; a compound assignment also
        // reads the LHS before writing it.
        WalkExpr(*e.b, Access::kRead);
        RecordWrite(*e.a, e.assign_op != AssignOp::kAssign,
                    /*via_builtin=*/false);
        WalkExpr(*e.a, e.assign_op == AssignOp::kAssign ? Access::kWrite
                                                        : Access::kReadWrite);
        return;
      case ExprKind::kCall: {
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Expr& arg = *e.args[i];
          const bool write_only = BuiltinWritesArg(e.string_value, i);
          // A bare array/pointer name (or &var) passed to a write-only
          // builtin position counts as a write; anything else is a read
          // (conservative for user functions).
          if (write_only) {
            if (arg.kind == ExprKind::kVarRef) {
              RecordWrite(arg, /*compound=*/false, /*via_builtin=*/true);
              WalkExpr(arg, Access::kWrite);
              continue;
            }
            if (arg.kind == ExprKind::kUnary && arg.un_op == UnOp::kAddrOf &&
                arg.a->kind == ExprKind::kVarRef) {
              RecordWrite(*arg.a, /*compound=*/false, /*via_builtin=*/true);
              Note(arg.a->string_value, Access::kWrite, *arg.a);
              continue;
            }
          }
          WalkExpr(arg, Access::kRead);
        }
        return;
      }
      case ExprKind::kCast:
        WalkExpr(*e.a, acc);
        return;
      case ExprKind::kTernary:
        WalkExpr(*e.a, Access::kRead);
        WalkExpr(*e.b, Access::kRead);
        WalkExpr(*e.c, Access::kRead);
        return;
      case ExprKind::kSizeof:
        return;
    }
  }

  const std::map<std::string, Type>& visible_;
  RegionInfo* out_;
  std::vector<std::set<std::string>> scopes_;
  std::set<std::string> written_;
  std::vector<PendingWrite> pending_;
};

// Walks the function body, maintaining the visible-symbol map, until it
// reaches `region`; returns true when found (map then holds the symbols
// visible at that point).
bool CollectVisible(const Stmt& s, const Stmt& region,
                    std::map<std::string, Type>* visible) {
  if (&s == &region) return true;
  switch (s.kind) {
    case StmtKind::kDecl:
      for (const auto& d : s.decls) (*visible)[d.name] = d.type;
      return false;
    case StmtKind::kBlock: {
      // Clone-on-descend so declarations inside nested blocks do not leak.
      std::map<std::string, Type> inner = *visible;
      for (const auto& sub : s.stmts) {
        if (&*sub == &region || CollectVisible(*sub, region, &inner)) {
          *visible = inner;
          return true;
        }
      }
      return false;
    }
    case StmtKind::kIf:
      if (s.then_stmt && CollectVisible(*s.then_stmt, region, visible)) {
        return true;
      }
      if (s.else_stmt && CollectVisible(*s.else_stmt, region, visible)) {
        return true;
      }
      return false;
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
      return s.body && CollectVisible(*s.body, region, visible);
    case StmtKind::kFor: {
      std::map<std::string, Type> inner = *visible;
      if (s.init_stmt && CollectVisible(*s.init_stmt, region, &inner)) {
        *visible = inner;
        return true;
      }
      if (s.body && CollectVisible(*s.body, region, &inner)) {
        *visible = inner;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

RegionInfo AnalyzeRegion(const FunctionDef& fn, const Stmt& region) {
  std::map<std::string, Type> visible;
  for (const auto& p : fn.params) visible[p.name] = p.type;
  bool found = (&*fn.body == &region);
  if (!found) found = CollectVisible(*fn.body, region, &visible);
  HD_CHECK_MSG(found, "region not found inside function '" << fn.name << "'");
  RegionInfo info;
  RegionWalker walker(visible, &info);
  walker.WalkStmt(region);
  walker.Finalize();
  for (const auto& name : info.used_outer) {
    if (!walker.written().count(name)) info.never_written.insert(name);
  }
  return info;
}

namespace {

// Second, narrower walk over the loop: collects operator-classified write
// sites (AccumSite) for the already-identified carried variables. Scope
// tracking mirrors RegionWalker so shadowed redeclarations are skipped.
class AccumWalker {
 public:
  AccumWalker(const std::set<std::string>& carried, LoopDepInfo* out)
      : carried_(carried), out_(out) {
    scopes_.emplace_back();
  }

  void WalkStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        WalkExpr(*s.expr);
        break;
      case StmtKind::kDecl:
        for (const auto& d : s.decls) {
          if (d.init) WalkExpr(*d.init);
          scopes_.back().insert(d.name);
        }
        break;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (const auto& sub : s.stmts) WalkStmt(*sub);
        scopes_.pop_back();
        break;
      case StmtKind::kIf:
        WalkExpr(*s.expr);
        if_conds_.push_back(s.expr.get());
        WalkStmt(*s.then_stmt);
        if (s.else_stmt) WalkStmt(*s.else_stmt);
        if_conds_.pop_back();
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        WalkExpr(*s.expr);
        WalkStmt(*s.body);
        break;
      case StmtKind::kFor:
        scopes_.emplace_back();
        if (s.init_stmt) WalkStmt(*s.init_stmt);
        if (s.expr) WalkExpr(*s.expr);
        WalkStmt(*s.body);
        if (s.step) WalkExpr(*s.step);
        scopes_.pop_back();
        break;
      case StmtKind::kReturn:
        if (s.expr) WalkExpr(*s.expr);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
  }

 private:
  bool DeclaredInside(const std::string& name) const {
    for (const auto& sc : scopes_) {
      if (sc.count(name)) return true;
    }
    return false;
  }

  // Resolves the base variable of an lvalue, noting element writes.
  const Expr* BaseVar(const Expr& lhs, bool* element) const {
    const Expr* base = &lhs;
    for (;;) {
      if (base->kind == ExprKind::kCast) {
        base = base->a.get();
      } else if (base->kind == ExprKind::kIndex) {
        *element = true;
        base = base->a.get();
      } else if (base->kind == ExprKind::kUnary &&
                 base->un_op == UnOp::kDeref) {
        *element = true;
        base = base->a.get();
      } else {
        break;
      }
    }
    return base->kind == ExprKind::kVarRef ? base : nullptr;
  }

  static bool ExprReads(const Expr& e, const std::string& name) {
    if (e.kind == ExprKind::kVarRef) return e.string_value == name;
    bool found = false;
    auto visit = [&](const Expr* sub) {
      if (sub && !found) found = ExprReads(*sub, name);
    };
    visit(e.a.get());
    visit(e.b.get());
    visit(e.c.get());
    for (const auto& arg : e.args) visit(arg.get());
    return found;
  }

  // The min/max idiom: the innermost enclosing if compares the carried
  // variable (v < x, x > v, ...) and the guarded body rebinds it.
  bool UnderComparisonOf(const std::string& name) const {
    if (if_conds_.empty()) return false;
    const Expr& cond = *if_conds_.back();
    if (cond.kind != ExprKind::kBinary) return false;
    if (cond.bin_op != BinOp::kLt && cond.bin_op != BinOp::kLe &&
        cond.bin_op != BinOp::kGt && cond.bin_op != BinOp::kGe) {
      return false;
    }
    return ExprReads(cond, name);
  }

  void Record(const Expr& lhs, AccumSite site) {
    bool element = false;
    const Expr* base = BaseVar(lhs, &element);
    if (base == nullptr) return;
    const std::string& name = base->string_value;
    if (DeclaredInside(name) || !carried_.count(name)) return;
    site.line = lhs.line;
    site.col = lhs.col;
    site.element = element;
    out_->accum_sites[name].push_back(site);
  }

  void WalkExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kVarRef:
      case ExprKind::kSizeof:
        return;
      case ExprKind::kIndex:
      case ExprKind::kCast:
        WalkExpr(*e.a);
        if (e.b) WalkExpr(*e.b);
        return;
      case ExprKind::kUnary:
        switch (e.un_op) {
          case UnOp::kPreInc:
          case UnOp::kPostInc: {
            AccumSite site;
            site.increment = true;
            Record(*e.a, site);
            break;
          }
          case UnOp::kPreDec:
          case UnOp::kPostDec: {
            AccumSite site;
            site.decrement = true;
            Record(*e.a, site);
            break;
          }
          default:
            break;
        }
        WalkExpr(*e.a);
        return;
      case ExprKind::kBinary:
      case ExprKind::kTernary:
        WalkExpr(*e.a);
        if (e.b) WalkExpr(*e.b);
        if (e.c) WalkExpr(*e.c);
        return;
      case ExprKind::kAssign: {
        AccumSite site;
        site.op = e.assign_op;
        if (e.assign_op == AssignOp::kAssign) {
          bool element = false;
          const Expr* base = BaseVar(*e.a, &element);
          if (base != nullptr) {
            site.rhs_reads_self = ExprReads(*e.b, base->string_value);
            site.minmax_guarded =
                !site.rhs_reads_self && UnderComparisonOf(base->string_value);
          }
        }
        Record(*e.a, site);
        WalkExpr(*e.b);
        WalkExpr(*e.a);
        return;
      }
      case ExprKind::kCall:
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Expr& arg = *e.args[i];
          if (BuiltinWritesArg(e.string_value, i)) {
            AccumSite site;
            site.via_builtin = true;
            if (arg.kind == ExprKind::kUnary && arg.un_op == UnOp::kAddrOf) {
              Record(*arg.a, site);
            } else {
              Record(arg, site);
            }
          }
          WalkExpr(arg);
        }
        return;
    }
  }

  const std::set<std::string>& carried_;
  LoopDepInfo* out_;
  std::vector<std::set<std::string>> scopes_;
  std::vector<const Expr*> if_conds_;
};

}  // namespace

LoopDepInfo AnalyzeLoopDependence(const FunctionDef& fn, const Stmt& loop) {
  LoopDepInfo info;
  info.region = AnalyzeRegion(fn, loop);
  for (const auto& name : info.region.read_before_write) {
    auto it = info.region.write_sites.find(name);
    if (it != info.region.write_sites.end() && !it->second.empty()) {
      info.carried.insert(name);
    }
  }
  if (!info.carried.empty()) {
    AccumWalker walker(info.carried, &info);
    walker.WalkStmt(loop);
  }
  return info;
}

const Stmt* FindDirectiveRegion(const FunctionDef& fn, Directive::Kind kind) {
  const Stmt* found = nullptr;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (found) return;
    if (s.directive && s.directive->kind == kind) {
      found = &s;
      return;
    }
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s.stmts) walk(*sub);
        break;
      case StmtKind::kIf:
        if (s.then_stmt) walk(*s.then_stmt);
        if (s.else_stmt) walk(*s.else_stmt);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        if (s.body) walk(*s.body);
        break;
      case StmtKind::kFor:
        if (s.body) walk(*s.body);
        break;
      default:
        break;
    }
  };
  walk(*fn.body);
  return found;
}

std::vector<const Stmt*> FindAllDirectiveRegions(const FunctionDef& fn) {
  std::vector<const Stmt*> out;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (s.directive) out.push_back(&s);
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s.stmts) walk(*sub);
        break;
      case StmtKind::kIf:
        if (s.then_stmt) walk(*s.then_stmt);
        if (s.else_stmt) walk(*s.else_stmt);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
      case StmtKind::kFor:
        if (s.body) walk(*s.body);
        break;
      default:
        break;
    }
  };
  walk(*fn.body);
  return out;
}

}  // namespace hd::minic
