#include <gtest/gtest.h>

#include "minic/parser.h"
#include "minic/sema.h"

namespace hd::minic {
namespace {

struct Analyzed {
  std::unique_ptr<TranslationUnit> unit;
  RegionInfo info;
  const Stmt* region = nullptr;
};

Analyzed Analyze(std::string_view src, Directive::Kind kind) {
  Analyzed a;
  a.unit = Parse(src);
  const FunctionDef* main_fn = a.unit->FindFunction("main");
  EXPECT_NE(main_fn, nullptr);
  a.region = FindDirectiveRegion(*main_fn, kind);
  EXPECT_NE(a.region, nullptr);
  a.info = AnalyzeRegion(*main_fn, *a.region);
  return a;
}

TEST(Sema, FindsMapperRegion) {
  auto a = Analyze(R"(
int main() {
  int x;
  #pragma mapreduce mapper key(x) value(x)
  while (0) { x = 1; }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_EQ(a.region->kind, StmtKind::kWhile);
}

TEST(Sema, MissingRegionReturnsNull) {
  auto unit = Parse("int main() { return 0; }");
  EXPECT_EQ(FindDirectiveRegion(*unit->FindFunction("main"),
                                Directive::Kind::kMapper),
            nullptr);
}

TEST(Sema, OuterVariablesCollected) {
  auto a = Analyze(R"(
int main() {
  int outer1, outer2, unused;
  #pragma mapreduce mapper key(outer1) value(outer2)
  while (outer1 < 10) {
    int inner;
    inner = outer1;
    outer2 = inner + 1;
    outer1 = outer1 + 1;
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.used_outer.count("outer1"));
  EXPECT_TRUE(a.info.used_outer.count("outer2"));
  EXPECT_FALSE(a.info.used_outer.count("unused"));
  EXPECT_FALSE(a.info.used_outer.count("inner"));
}

TEST(Sema, OuterTypesRecorded) {
  auto a = Analyze(R"(
int main() {
  double centroids[8];
  char word[30];
  int n;
  #pragma mapreduce mapper key(word) value(n)
  while (n < 3) { n = n + (int) centroids[0] + word[0]; }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_EQ(a.info.outer_types.at("centroids"),
            Type::ArrayOf(Scalar::kDouble, 8));
  EXPECT_EQ(a.info.outer_types.at("word"), Type::ArrayOf(Scalar::kChar, 30));
  EXPECT_EQ(a.info.outer_types.at("n"), Type::Int());
}

TEST(Sema, ReadBeforeWriteDetected) {
  auto a = Analyze(R"(
int main() {
  int rbw, wfirst, ronly;
  #pragma mapreduce mapper key(rbw) value(wfirst)
  while (ronly) {
    rbw = rbw + 1;      /* compound: read-before-write */
    wfirst = 5;          /* written first */
    rbw = wfirst + ronly;
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.read_before_write.count("rbw"));
  EXPECT_TRUE(a.info.read_before_write.count("ronly"));
  EXPECT_FALSE(a.info.read_before_write.count("wfirst"));
}

TEST(Sema, NeverWrittenEligibleForSharedRO) {
  auto a = Analyze(R"(
int main() {
  double table[16];
  int acc, i;
  #pragma mapreduce mapper key(acc) value(acc)
  while (i < 16) { acc += (int) table[i]; i++; }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.never_written.count("table"));
  EXPECT_FALSE(a.info.never_written.count("acc"));
  EXPECT_FALSE(a.info.never_written.count("i"));
}

TEST(Sema, WriteOnlyBuiltinArgsDoNotForceFirstprivate) {
  auto a = Analyze(R"(
int main() {
  char word[30];
  char *line; size_t n; int read;
  #pragma mapreduce mapper key(word) value(read)
  while ((read = getline(&line, &n, stdin)) != -1) {
    strcpy(word, line);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  // word is only ever written (strcpy dst); line is written by getline but
  // then read by strcpy src.
  EXPECT_FALSE(a.info.read_before_write.count("word"));
  EXPECT_FALSE(a.info.read_before_write.count("n"));
}

TEST(Sema, UserFunctionArgsConservativelyRead) {
  auto a = Analyze(R"(
int helper(char *b) { return b[0]; }
int main() {
  char buf[8];
  int r;
  #pragma mapreduce mapper key(buf) value(r)
  while (r) { r = helper(buf); }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.read_before_write.count("buf"));
}

TEST(Sema, ShadowingInsideRegion) {
  auto a = Analyze(R"(
int main() {
  int x;
  #pragma mapreduce mapper key(x) value(x)
  while (1) {
    int x;
    x = 2;
    break;
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  // The outer x is shadowed before any region use; only the loop condition
  // uses literals.
  EXPECT_FALSE(a.info.used_outer.count("x"));
}

TEST(Sema, CombinerRegionInsideBlock) {
  auto a = Analyze(R"(
int main() {
  char prev[30]; int count;
  #pragma mapreduce combiner key(prev) value(count) keyin(prev) valuein(count)
  {
    while (scanf("%s %d", prev, &count) == 2) { }
  }
  return 0;
})",
                   Directive::Kind::kCombiner);
  EXPECT_EQ(a.region->kind, StmtKind::kBlock);
  EXPECT_TRUE(a.info.used_outer.count("prev"));
  EXPECT_TRUE(a.info.used_outer.count("count"));
}

TEST(Sema, ReadThroughShortCircuitAndCountsAsReadBeforeWrite) {
  // Both operands of && / || are treated as evaluated (conservative): a
  // read of `limit` on the right of && still needs firstprivate init even
  // though at runtime the left side may short-circuit past it.
  auto a = Analyze(R"(
int main() {
  int flag, limit, n;
  #pragma mapreduce mapper key(n) value(n)
  while (0) {
    if (flag && limit > 3) { n = 1; }
    if (flag || limit > 9) { n = 2; }
    printf("%d\t%d\n", n, n);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.read_before_write.count("flag"));
  EXPECT_TRUE(a.info.read_before_write.count("limit"));
  // n is written before its first read despite appearing under conditions.
  EXPECT_FALSE(a.info.read_before_write.count("n"));
}

TEST(Sema, WriteThenReadInNestedBlockStaysWriteFirst) {
  auto a = Analyze(R"(
int main() {
  int acc, probe;
  #pragma mapreduce mapper key(acc) value(acc)
  while (0) {
    acc = 0;
    {
      {
        probe = acc + 1;
      }
      acc = probe;
    }
    printf("%d\t%d\n", acc, acc);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  // acc's first access is the write in the outer block; the nested-block
  // read must not flip it to read-before-write.
  EXPECT_FALSE(a.info.read_before_write.count("acc"));
  EXPECT_FALSE(a.info.never_written.count("acc"));
  EXPECT_FALSE(a.info.read_before_write.count("probe"));
  ASSERT_EQ(a.info.write_sites.at("acc").size(), 2u);
  EXPECT_FALSE(a.info.write_sites.at("acc")[0].element);
  EXPECT_FALSE(a.info.write_sites.at("acc")[0].compound);
}

TEST(Sema, ElementVersusWholeArrayWriteSites) {
  auto a = Analyze(R"(
int main() {
  char buf[32];
  char src[32];
  int cells[8];
  int i, n;
  #pragma mapreduce mapper key(buf) value(n)
  while (0) {
    strcpy(buf, src);
    cells[0] = 1;
    i = 2;
    cells[i] = 2;
    n = cells[0];
    n += 1;
    printf("%s\t%d\n", buf, n);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  // strcpy writes `buf` whole, through a builtin output argument.
  ASSERT_EQ(a.info.write_sites.at("buf").size(), 1u);
  EXPECT_TRUE(a.info.write_sites.at("buf")[0].via_builtin);
  EXPECT_FALSE(a.info.write_sites.at("buf")[0].element);
  // cells[0] / cells[i]: element writes; the literal index is
  // region-constant, the written `i` index is not.
  ASSERT_EQ(a.info.write_sites.at("cells").size(), 2u);
  EXPECT_TRUE(a.info.write_sites.at("cells")[0].element);
  EXPECT_TRUE(a.info.write_sites.at("cells")[0].constant_index);
  EXPECT_TRUE(a.info.write_sites.at("cells")[1].element);
  EXPECT_FALSE(a.info.write_sites.at("cells")[1].constant_index);
  // n += 1 is a compound (read-modify-write) site.
  const auto& n_sites = a.info.write_sites.at("n");
  ASSERT_EQ(n_sites.size(), 2u);
  EXPECT_FALSE(n_sites[0].compound);
  EXPECT_TRUE(n_sites[1].compound);
  // Write sites carry real locations.
  EXPECT_GT(n_sites[1].line, 0);
  EXPECT_GT(n_sites[1].col, 0);
}

TEST(Sema, ConstantIndexUsesUnmodifiedOuterVariable) {
  auto a = Analyze(R"(
int main() {
  int cells[8];
  int k, n;
  k = 3;
  #pragma mapreduce mapper key(n) value(n)
  while (0) {
    cells[k] = 1;
    n = cells[k];
    printf("%d\t%d\n", n, n);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  // `k` is an outer variable the region never writes, so cells[k] hits the
  // same slot on every thread: region-constant index.
  ASSERT_EQ(a.info.write_sites.at("cells").size(), 1u);
  EXPECT_TRUE(a.info.write_sites.at("cells")[0].constant_index);
}

TEST(Sema, FirstUseAndIndexedReadTracking) {
  auto a = Analyze(R"(
int main() {
  int table[8];
  int n;
  #pragma mapreduce mapper key(n) value(n)
  while (0) {
    n = table[2];
    printf("%d\t%d\n", n, n);
  }
  return 0;
})",
                   Directive::Kind::kMapper);
  EXPECT_TRUE(a.info.indexed_read.count("table"));
  ASSERT_TRUE(a.info.first_use.count("table"));
  EXPECT_EQ(a.info.first_use.at("table").first, 7);  // n = table[2];
}

}  // namespace
}  // namespace hd::minic
