// Microbenchmarks of the GPU MapReduce runtime primitives (google-benchmark).
// These measure the *simulator's* wall-clock throughput — useful for keeping
// the functional simulation fast — and report the modeled device time of
// each kernel as a counter.
#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "gpurt/kv.h"
#include "gpurt/kvstore.h"
#include "gpurt/records.h"
#include "gpurt/sort.h"
#include "gpusim/kernel.h"

namespace {

using namespace hd;

std::vector<gpurt::KvPair> MakePairs(int n) {
  Prng prng(99);
  std::vector<gpurt::KvPair> pairs;
  pairs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pairs.push_back({"w" + std::to_string(prng.NextBounded(5000)), "1"});
  }
  return pairs;
}

void BM_PartitionOf(benchmark::State& state) {
  auto pairs = MakePairs(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpurt::PartitionOf(pairs[i++ % pairs.size()].key, 48));
  }
}
BENCHMARK(BM_PartitionOf);

void BM_SortPairsByKey(benchmark::State& state) {
  const auto base = MakePairs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto copy = base;
    gpurt::SortPairsByKey(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortPairsByKey)->Range(1 << 8, 1 << 14);

void BM_KvStoreEmit(benchmark::State& state) {
  const auto pairs = MakePairs(1024);
  for (auto _ : state) {
    gpurt::GlobalKvStore store(64, 1 << 16, 30, 16);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      store.Emit(static_cast<int>(i % 64), pairs[i]);
    }
    benchmark::DoNotOptimize(store.total_emitted());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KvStoreEmit);

void BM_LocateRecords(benchmark::State& state) {
  std::string data;
  Prng prng(5);
  while (static_cast<std::int64_t>(data.size()) < state.range(0)) {
    data.append(std::string(8 + prng.NextBounded(60), 'x'));
    data += '\n';
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpurt::LocateRecords(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LocateRecords)->Range(1 << 12, 1 << 18);

void BM_ChargeSortKernel(benchmark::State& state) {
  const auto cfg = gpusim::DeviceConfig::TeslaK40();
  for (auto _ : state) {
    gpusim::KernelSim kernel(cfg, 30, 256, "sort");
    gpurt::ChargeSortKernel(kernel, state.range(0), 30, true);
    benchmark::DoNotOptimize(kernel.Finish().elapsed_sec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChargeSortKernel)->Range(1 << 10, 1 << 18);

void BM_KernelFinish(benchmark::State& state) {
  const auto cfg = gpusim::DeviceConfig::TeslaK40();
  for (auto _ : state) {
    gpusim::KernelSim kernel(cfg, 30, 128, "finish");
    kernel.ChargeOp(0, 0, minic::OpClass::kIntAlu, 1000);
    benchmark::DoNotOptimize(kernel.Finish().elapsed_sec);
  }
}
BENCHMARK(BM_KernelFinish);

}  // namespace

BENCHMARK_MAIN();
