file(REMOVE_RECURSE
  "CMakeFiles/fig7_optimizations.dir/fig7_optimizations.cc.o"
  "CMakeFiles/fig7_optimizations.dir/fig7_optimizations.cc.o.d"
  "fig7_optimizations"
  "fig7_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
