file(REMOVE_RECURSE
  "CMakeFiles/hd_translator.dir/translator.cc.o"
  "CMakeFiles/hd_translator.dir/translator.cc.o.d"
  "libhd_translator.a"
  "libhd_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
