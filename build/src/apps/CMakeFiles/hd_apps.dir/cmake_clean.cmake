file(REMOVE_RECURSE
  "CMakeFiles/hd_apps.dir/cluster_apps.cc.o"
  "CMakeFiles/hd_apps.dir/cluster_apps.cc.o.d"
  "CMakeFiles/hd_apps.dir/gen.cc.o"
  "CMakeFiles/hd_apps.dir/gen.cc.o.d"
  "CMakeFiles/hd_apps.dir/golden_util.cc.o"
  "CMakeFiles/hd_apps.dir/golden_util.cc.o.d"
  "CMakeFiles/hd_apps.dir/hist_apps.cc.o"
  "CMakeFiles/hd_apps.dir/hist_apps.cc.o.d"
  "CMakeFiles/hd_apps.dir/numeric_apps.cc.o"
  "CMakeFiles/hd_apps.dir/numeric_apps.cc.o.d"
  "CMakeFiles/hd_apps.dir/registry.cc.o"
  "CMakeFiles/hd_apps.dir/registry.cc.o.d"
  "CMakeFiles/hd_apps.dir/sources.cc.o"
  "CMakeFiles/hd_apps.dir/sources.cc.o.d"
  "CMakeFiles/hd_apps.dir/text_apps.cc.o"
  "CMakeFiles/hd_apps.dir/text_apps.cc.o.d"
  "libhd_apps.a"
  "libhd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
