#include "gpusim/config.h"

namespace hd::gpusim {

DeviceConfig DeviceConfig::TeslaK40() {
  DeviceConfig c;
  c.name = "Tesla K40 (Kepler)";
  c.num_sms = 15;
  c.max_resident_warps = 64;
  c.core_clock_ghz = 0.745;
  c.global_mem_bytes = 12LL << 30;
  c.dram_bytes_per_cycle = 380.0;  // ~288 GB/s at 745 MHz
  c.texture_cache_lines = 384;     // 48 KiB read-only cache per SM
  return c;
}

DeviceConfig DeviceConfig::TeslaM2090() {
  DeviceConfig c;
  c.name = "Tesla M2090 (Fermi)";
  c.num_sms = 16;
  c.max_resident_warps = 48;
  c.core_clock_ghz = 0.65;
  c.global_mem_bytes = 6LL << 30;
  c.dram_bytes_per_cycle = 270.0;  // ~177 GB/s at 650 MHz
  c.texture_cache_lines = 96;      // 12 KiB texture cache per SM
  c.cycles_special = 6.0;  // Fermi SFU
  c.atomic_global = 500.0;         // Fermi atomics are slower
  c.pcie_bytes_per_sec = 4.0e9;
  return c;
}

CpuConfig CpuConfig::XeonE5_2680() {
  CpuConfig c;
  c.name = "Intel Xeon E5-2680 v2";
  c.clock_ghz = 2.8;
  return c;
}

CpuConfig CpuConfig::XeonX5560() {
  CpuConfig c;
  c.name = "Intel Xeon X5560";
  c.clock_ghz = 2.8;
  c.cycles_int_alu = 0.5;
  c.cycles_float_alu = 0.7;
  c.cycles_mem = 1.6;
  return c;
}

}  // namespace hd::gpusim
