#include "sched/policy.h"

#include <algorithm>

#include "common/check.h"

namespace hd::sched {

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kCpuOnly: return "cpu-only";
    case Policy::kGpuFirst: return "gpu-first";
    case Policy::kTail: return "tail";
  }
  return "?";
}

Policy MakePolicy(const std::string& name) {
  if (name == "cpu-only") return Policy::kCpuOnly;
  if (name == "gpu-first") return Policy::kGpuFirst;
  if (name == "tail") return Policy::kTail;
  HD_CHECK_MSG(false, "unknown scheduling policy '" << name
                          << "' (valid: " << kPolicyNames << ")");
  return Policy::kTail;  // unreachable; HD_CHECK_MSG throws
}

int MaxTasksThisHeartbeat(Policy policy, const NodeSched& node,
                          int pending_maps, double max_speedup,
                          int num_slaves) {
  const int free_slots =
      node.free_cpu_slots +
      (policy == Policy::kCpuOnly ? 0 : node.free_gpu_slots);
  if (policy != Policy::kTail || node.num_gpus == 0) return free_slots;
  // TailScheduleOnJT: once the job tail begins, hand a TaskTracker only as
  // many tasks as it has *idle* GPUs (at most numGPUs per heartbeat).
  // Otherwise the TaskTracker's forced-GPU placement would pile the final
  // tasks into one node's GPU queue while other nodes' GPUs idle — exactly
  // the queuing effect §6.2 says this cap exists to counter.
  const double job_tail =
      static_cast<double>(node.num_gpus) * max_speedup * num_slaves;
  if (static_cast<double>(pending_maps) < job_tail) {
    return std::min(free_slots, node.free_gpu_slots);
  }
  return free_slots;
}

bool PlaceOnGpu(Policy policy, const NodeSched& node,
                double maps_remaining_per_node) {
  switch (policy) {
    case Policy::kCpuOnly:
      return false;
    case Policy::kGpuFirst:
      return node.free_gpu_slots > 0;
    case Policy::kTail: {
      if (TailForces(node, maps_remaining_per_node)) return true;
      if (node.num_gpus == 0) return false;
      return node.free_gpu_slots > 0;  // body: GPU-first
    }
  }
  return false;
}

bool TailForces(const NodeSched& node, double maps_remaining_per_node) {
  // A GPU-less TaskTracker degenerates to plain Hadoop: taskTail would be 0
  // and the `<=` comparison would force-GPU once remaining hits 0.
  if (node.num_gpus == 0) return false;
  const double task_tail =
      static_cast<double>(node.num_gpus) * node.ave_speedup;
  return maps_remaining_per_node <= task_tail;
}

}  // namespace hd::sched
