#include "translator/translator.h"

#include <algorithm>

#include "common/check.h"
#include "minic/parser.h"

namespace hd::translator {

using minic::Directive;
using minic::Scalar;
using minic::Type;

const char* VarClassName(VarClass c) {
  switch (c) {
    case VarClass::kSharedROScalar: return "sharedRO-scalar(constant)";
    case VarClass::kSharedROArray: return "sharedRO-array(global)";
    case VarClass::kTexture: return "texture";
    case VarClass::kFirstPrivate: return "firstprivate";
    case VarClass::kPrivate: return "private";
  }
  return "?";
}

const VarPlan* KernelPlan::FindVar(const std::string& name) const {
  for (const auto& v : vars) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

namespace {

// Derives the KV-store slot width for one emitted variable.
int SlotBytes(const Type& t, int declared_len, const TranslateOptions& opts) {
  if (declared_len > 0) {
    // keylength/vallength count elements of the emitted variable.
    const std::int64_t elem =
        t.is_array || t.is_pointer ? minic::ScalarSize(t.scalar) : 1;
    // char arrays: length == bytes; numeric: render as text.
    if (t.scalar == Scalar::kChar && (t.is_array || t.is_pointer)) {
      return declared_len;
    }
    if (!t.is_array && !t.is_pointer) {
      return t.IsFloating() ? opts.double_text_bytes : opts.int_text_bytes;
    }
    return static_cast<int>(declared_len * elem);
  }
  if (t.scalar == Scalar::kChar && t.is_array) {
    return static_cast<int>(t.array_size);
  }
  if (t.IsFloating()) return opts.double_text_bytes;
  return opts.int_text_bytes;
}

int ParseIntArg(const Directive& dir, const std::string& clause) {
  if (!dir.Has(clause)) return 0;
  const std::string& a = dir.Arg(clause);
  try {
    return std::stoi(a);
  } catch (const std::exception&) {
    throw TranslateError("clause '" + clause + "' expects an integer, got '" +
                         a + "'");
  }
}

// Implements Algorithm 1: classifies every variable the region uses but
// does not declare.
void ClassifyVariables(const Directive& dir, const minic::RegionInfo& info,
                       const TranslateOptions& opts, KernelPlan* plan) {
  std::set<std::string> shared_ro, texture, first_private;
  auto collect = [&](const char* clause, std::set<std::string>* out) {
    auto it = dir.clauses.find(clause);
    if (it == dir.clauses.end()) return;
    for (const auto& name : it->second) {
      if (!info.used_outer.count(name)) {
        throw TranslateError("clause '" + std::string(clause) +
                             "' names variable '" + name +
                             "' that the region does not use");
      }
      out->insert(name);
    }
  };
  collect("sharedRO", &shared_ro);
  collect("texture", &texture);
  collect("firstprivate", &first_private);

  for (const auto& name : shared_ro) {
    if (!info.never_written.count(name)) {
      throw TranslateError("sharedRO variable '" + name +
                           "' is written inside the region");
    }
  }
  for (const auto& name : texture) {
    const Type& t = info.outer_types.at(name);
    if (!t.is_array && !t.is_pointer) {
      throw TranslateError("texture clause expects an array, got scalar '" +
                           name + "'");
    }
    if (!info.never_written.count(name)) {
      throw TranslateError("texture variable '" + name +
                           "' is written inside the region");
    }
  }

  for (const auto& name : info.used_outer) {
    VarPlan vp;
    vp.name = name;
    vp.type = info.outer_types.at(name);
    if (texture.count(name)) {
      vp.cls = VarClass::kTexture;
    } else if (shared_ro.count(name)) {
      vp.cls = vp.type.IsScalarValue() ? VarClass::kSharedROScalar
                                       : VarClass::kSharedROArray;
    } else if (first_private.count(name)) {
      vp.cls = VarClass::kFirstPrivate;
    } else if (opts.auto_firstprivate && info.read_before_write.count(name)) {
      // Automatic detection (§3.2): read-before-write externals must be
      // initialised from their host values.
      vp.cls = VarClass::kFirstPrivate;
    } else {
      vp.cls = VarClass::kPrivate;
    }
    plan->vars.push_back(std::move(vp));
  }
  std::sort(plan->vars.begin(), plan->vars.end(),
            [](const VarPlan& a, const VarPlan& b) { return a.name < b.name; });
}

KernelPlan BuildPlan(const minic::FunctionDef& fn, const minic::Stmt& region,
                     const TranslateOptions& opts) {
  const Directive& dir = *region.directive;
  KernelPlan plan;
  plan.kind = dir.kind;
  plan.fn = &fn;
  plan.region = &region;
  plan.directive = &dir;

  const minic::RegionInfo info = minic::AnalyzeRegion(fn, region);

  // Mandatory clauses (Table 1).
  if (!dir.Has("key") || !dir.Has("value")) {
    throw TranslateError("mapreduce directive requires key(...) and "
                         "value(...) clauses");
  }
  plan.key_var = dir.Arg("key");
  plan.value_var = dir.Arg("value");
  if (dir.kind == Directive::Kind::kCombiner) {
    if (!dir.Has("keyin") || !dir.Has("valuein")) {
      throw TranslateError("combiner directive requires keyin(...) and "
                           "valuein(...) clauses");
    }
    plan.keyin_var = dir.Arg("keyin");
    plan.valuein_var = dir.Arg("valuein");
  } else {
    if (dir.Has("keyin") || dir.Has("valuein")) {
      throw TranslateError("keyin/valuein are only valid on the combiner");
    }
  }

  auto type_of = [&](const std::string& name, const char* what) -> Type {
    auto it = info.outer_types.find(name);
    if (it == info.outer_types.end()) {
      throw TranslateError(std::string(what) + " variable '" + name +
                           "' is not used in the region or not declared");
    }
    return it->second;
  };

  const Type key_t = type_of(plan.key_var, "key");
  const Type val_t = type_of(plan.value_var, "value");
  if (dir.kind == Directive::Kind::kCombiner) {
    type_of(plan.keyin_var, "keyin");
    type_of(plan.valuein_var, "valuein");
  }

  plan.kv.key_is_array = key_t.is_array || key_t.is_pointer;
  plan.kv.val_is_array = val_t.is_array || val_t.is_pointer;
  plan.kv.key_slot_bytes =
      SlotBytes(key_t, ParseIntArg(dir, "keylength"), opts);
  plan.kv.val_slot_bytes =
      SlotBytes(val_t, ParseIntArg(dir, "vallength"), opts);
  HD_CHECK(plan.kv.key_slot_bytes > 0);
  HD_CHECK(plan.kv.val_slot_bytes > 0);

  plan.kvpairs_hint = ParseIntArg(dir, "kvpairs");
  plan.blocks_hint = ParseIntArg(dir, "blocks");
  plan.threads_hint = ParseIntArg(dir, "threads");
  if (dir.kind == Directive::Kind::kCombiner && plan.kvpairs_hint != 0) {
    throw TranslateError("kvpairs is only valid on the mapper");
  }

  ClassifyVariables(dir, info, opts, &plan);
  return plan;
}

}  // namespace

TranslatedProgram Translate(const std::string& source,
                            const TranslateOptions& options) {
  TranslatedProgram out;
  out.unit = minic::Parse(source);
  const minic::FunctionDef* main_fn = out.unit->FindFunction("main");
  if (main_fn == nullptr) {
    throw TranslateError("program has no main() function");
  }
  if (const minic::Stmt* region =
          minic::FindDirectiveRegion(*main_fn, Directive::Kind::kMapper)) {
    out.map_plan = BuildPlan(*main_fn, *region, options);
  }
  if (const minic::Stmt* region =
          minic::FindDirectiveRegion(*main_fn, Directive::Kind::kCombiner)) {
    out.combine_plan = BuildPlan(*main_fn, *region, options);
  }
  if (!out.map_plan && !out.combine_plan) {
    throw TranslateError("no mapreduce directive found in main()");
  }
  return out;
}

}  // namespace hd::translator
