// Quickstart: the paper's wordcount (Listings 1 and 2) end to end.
//
// 1. Compile the directive-annotated streaming filters (map + combine).
// 2. Inspect what the translator inferred (Algorithm 1 classification).
// 3. Run one map task on the CPU path and on the simulated GPU, compare
//    outputs and modeled times.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <map>

#include "apps/benchmark.h"
#include "common/table.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpusim/device.h"

int main() {
  using namespace hd;

  // The benchmark registry carries the paper's wordcount sources; any
  // directive-annotated mini-C program works the same way.
  const apps::Benchmark& wc = apps::GetBenchmark("WC");
  gpurt::JobProgram job =
      gpurt::CompileJob(wc.map_source, wc.combine_source, wc.reduce_source);

  std::cout << "== Translator output (Algorithm 1 classification) ==\n";
  for (const auto& var : job.map.map_plan->vars) {
    std::cout << "  map var " << var.name << " -> "
              << translator::VarClassName(var.cls) << "\n";
  }
  for (const auto& var : job.combine->combine_plan->vars) {
    std::cout << "  combine var " << var.name << " -> "
              << translator::VarClassName(var.cls) << "\n";
  }
  std::cout << "  KV slots: key " << job.map.map_plan->kv.key_slot_bytes
            << " B, value " << job.map.map_plan->kv.val_slot_bytes << " B\n\n";

  const std::string split =
      "heterodoop runs mapreduce on cpus and gpus\n"
      "the same sequential source runs on both\n"
      "gpus like big splits and many records\n";

  // CPU path: the unmodified filter as a Hadoop Streaming task.
  gpurt::CpuTaskOptions copts;
  copts.num_reducers = 2;
  auto cpu = gpurt::CpuMapTask(job, gpusim::CpuConfig::XeonE5_2680(), copts)
                 .Run(split);

  // GPU path: translated kernels on the simulated Tesla K40.
  gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
  gpurt::GpuTaskOptions gopts;
  gopts.num_reducers = 2;
  auto gpu = gpurt::GpuMapTask(job, &device, gopts).Run(split);

  std::cout << "== One map(+combine) task, CPU vs GPU ==\n";
  Table t({"Path", "records", "KV pairs", "output pairs", "modeled ms"});
  t.Row().Cell("CPU core").Cell(cpu.stats.records).Cell(
      cpu.stats.map_kv_pairs).Cell(cpu.stats.out_kv_pairs)
      .Cell(cpu.phases.Total() * 1e3, 3);
  t.Row().Cell("GPU").Cell(gpu.stats.records).Cell(
      gpu.stats.map_kv_pairs).Cell(gpu.stats.out_kv_pairs)
      .Cell(gpu.phases.Total() * 1e3, 3);
  t.Print(std::cout);

  // The combine outputs may differ in grouping (GPU combiners trade
  // functional equivalence for parallelism, §4.2) but the per-word sums
  // must agree.
  std::map<std::string, long> cpu_sums, gpu_sums;
  for (const auto& part : cpu.partitions) {
    for (const auto& kv : part) cpu_sums[kv.key] += std::stol(kv.value);
  }
  for (const auto& part : gpu.partitions) {
    for (const auto& kv : part) gpu_sums[kv.key] += std::stol(kv.value);
  }
  std::cout << "\n== Word counts (CPU path, must match GPU path) ==\n";
  bool all_match = true;
  for (const auto& [word, count] : cpu_sums) {
    std::cout << "  " << word << " = " << count;
    if (gpu_sums[word] != count) {
      std::cout << "  MISMATCH (gpu: " << gpu_sums[word] << ")";
      all_match = false;
    }
    std::cout << "\n";
  }
  std::cout << (all_match ? "\nCPU and GPU paths agree.\n"
                          : "\nPATHS DIVERGED — bug!\n");
  return all_match ? 0 : 1;
}
