// Microbenchmarks of the mini-C frontend (google-benchmark): lexer, parser,
// and interpreter throughput over the wordcount filter. The interpreter is
// the inner loop of every functional experiment, so its wall-clock
// throughput bounds how large a split the benches can process.
#include <benchmark/benchmark.h>

#include "apps/benchmark.h"
#include "apps/gen.h"
#include "minic/interp.h"
#include "minic/lexer.h"
#include "minic/parser.h"

namespace {

using namespace hd;

const std::string& WcMapSource() {
  static const std::string src = apps::GetBenchmark("WC").map_source;
  return src;
}

void BM_LexWordcount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::Lex(WcMapSource()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(WcMapSource().size()));
}
BENCHMARK(BM_LexWordcount);

void BM_ParseWordcount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::Parse(WcMapSource()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(WcMapSource().size()));
}
BENCHMARK(BM_ParseWordcount);

void BM_InterpWordcountMap(benchmark::State& state) {
  auto unit = minic::Parse(WcMapSource());
  const std::string input =
      apps::GenZipfText(state.range(0), /*seed=*/3);
  for (auto _ : state) {
    minic::TextIoEnv io(input);
    minic::CountingHooks hooks;
    minic::Interp interp(*unit, &io, &hooks);
    benchmark::DoNotOptimize(interp.RunMain());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_InterpWordcountMap)->Range(1 << 10, 1 << 16);

void BM_InterpBlackScholesRecord(benchmark::State& state) {
  auto unit = minic::Parse(apps::GetBenchmark("BS").map_source);
  const std::string input = apps::GenOptions(256, /*seed=*/3);
  for (auto _ : state) {
    minic::TextIoEnv io(input);
    minic::CountingHooks hooks;
    minic::Interp interp(*unit, &io, &hooks);
    benchmark::DoNotOptimize(interp.RunMain());
  }
}
BENCHMARK(BM_InterpBlackScholesRecord);

void BM_ZipfGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::GenZipfText(state.range(0), 7));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZipfGenerator)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
