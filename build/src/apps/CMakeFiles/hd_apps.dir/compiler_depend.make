# Empty compiler generated dependencies file for hd_apps.
# This may be replaced when dependencies are built.
