file(REMOVE_RECURSE
  "CMakeFiles/iterative_kmeans.dir/iterative_kmeans.cpp.o"
  "CMakeFiles/iterative_kmeans.dir/iterative_kmeans.cpp.o.d"
  "iterative_kmeans"
  "iterative_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
