// Declarative SLO rules evaluated at telemetry sample points.
//
// Two rule shapes cover the health questions the engines ask:
//
//   * kAbove / kBelow — a plain threshold on the latest value of one
//     series (a queue depth, a lag gauge, a utilization rate).
//   * kBurnRate — SRE-style multi-window burn rate on an error budget:
//     over a trailing window, burn = (bad_delta / total_delta) / budget,
//     i.e. how many times faster than allowed the budget is being spent.
//     The rule fires only while BOTH the short and the long window burn
//     at >= burn_threshold: the short window makes alerts responsive,
//     the long window keeps one bad interval from paging.
//
// The monitor is a state machine per rule: Evaluate() compares the wanted
// firing state against the current one and records an AlertEvent (plus a
// trace instant, category "slo") on every transition. Everything is
// driven by modeled time and the deterministic sample series, so the
// alert stream is bit-reproducible for a seeded run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hd::trace {

class TimeSeries;

struct SloRule {
  enum class Kind { kAbove, kBelow, kBurnRate };

  std::string name;  // alert name, e.g. "stream.clicks.shed_budget_burn"
  Kind kind = Kind::kAbove;

  // kAbove / kBelow: fire while `series`'s latest value is strictly
  // above / below `threshold`.
  std::string series;
  double threshold = 0.0;

  // kBurnRate: cumulative event series (monotone counters sampled into
  // the time series) and the error-budget fraction they may burn.
  std::string bad_series;
  std::string total_series;
  double budget = 0.01;
  double short_window_sec = 60.0;
  double long_window_sec = 300.0;
  double burn_threshold = 2.0;

  // Where alert instants render in the trace.
  Track track;
};

// One firing/resolved transition, in modeled time.
struct AlertEvent {
  double at_sec = 0.0;
  std::string rule;
  bool firing = false;  // false = resolved
  double value = 0.0;   // the evaluated value at the transition
};

class SloMonitor {
 public:
  void AddRule(SloRule rule);
  const std::vector<SloRule>& rules() const { return rules_; }

  // Every transition recorded so far, in time order.
  const std::vector<AlertEvent>& alerts() const { return alerts_; }
  // Rules currently in the firing state.
  std::int64_t firing_count() const;

  // Evaluates every rule against the sampler state at `now`; emits a
  // trace instant per transition when `sink` is non-null.
  void Evaluate(double now, const TimeSeries& ts, Sink* sink);

  // The value a rule evaluates to right now (threshold rules: the latest
  // series value; burn rules: the short-window burn). Exposed for tests
  // and the timeline renderer.
  static double EvalValue(const SloRule& rule, const TimeSeries& ts,
                          bool* want_firing);

 private:
  std::vector<SloRule> rules_;
  std::vector<bool> firing_;
  std::vector<AlertEvent> alerts_;
};

}  // namespace hd::trace
