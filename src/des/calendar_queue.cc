// Calendar-queue backend (R. Brown, "Calendar Queues: A Fast O(1)
// Priority Queue Implementation for the Simulation Event Set Problem",
// CACM 1988), adapted to the pooled-key Scheduler contract.
//
// Keys live in a power-of-two array of "day" buckets. A key at time t
// belongs to virtual day vb = floor(t / width); days map onto buckets
// modulo the array size, so one bucket holds every year's copy of the
// same day. Buckets are kept sorted descending by (time, seq) — the
// vector back is always the bucket's earliest key, making due-event
// checks and pops O(1) vector ops.
//
// Pop scans forward from the cursor day; a full lap without a due key
// (sparse region) falls back to a direct scan of all bucket minima and
// jumps the cursor there. The array only ever grows: it quadruples when
// occupancy exceeds two keys per bucket (re-estimating the day width
// from the live span), so a ramp to n keys reinserts ~2n/3 keys total,
// and it never shrinks — draining is pure pops, no reorganization.
//
// Ordering is still exactly (time, seq): all keys of one virtual day
// share a bucket, the bucket is sorted, and the cursor visits days in
// order — so pop order is bit-identical to the reference heap.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "des/scheduler.h"

namespace hd::des {
namespace {

class CalendarScheduler final : public Scheduler {
 public:
  CalendarScheduler() : buckets_(kMinBuckets) { SetWidth(1.0); }

  const char* name() const override { return "calendar"; }

  // Staged drain: pop every key of the due day at once, prefetch all
  // their records (the fetches overlap instead of serializing one pool
  // miss per event), then dispatch in order. A handler may schedule new
  // work mid-stage; Push() tracks the minimum key pushed since the stage
  // was taken, and if it precedes the next staged key the remainder is
  // pushed back and restaged — dispatch order stays exactly (time, seq).
  void Run() override {
    Key stage[kStageMax];
    for (;;) {
      const std::size_t n = PopDue(stage, kStageMax);
      if (n == 0) return;
      for (std::size_t i = 0; i < n; ++i) PrefetchSlot(stage[i].slot);
      staged_push_ = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (staged_push_ && KeyLess(pushed_min_, stage[i])) {
          // Reentrant schedule landed before the rest of the stage.
          for (std::size_t j = i; j < n; ++j) Push(stage[j]);
          break;
        }
        DispatchKey(stage[i]);
      }
    }
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kStageMax = 64;
  // Floor on the day width: with times below ~1e6 simulated seconds this
  // keeps virtual day numbers far inside int64 range.
  static constexpr double kMinWidth = 1e-9;

  std::int64_t Vb(double time) const {
    return static_cast<std::int64_t>(time * inv_width_);
  }

  void SetWidth(double w) {
    width_ = std::max(w, kMinWidth);
    inv_width_ = 1.0 / width_;
  }

  static bool KeyDescending(const Key& a, const Key& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  void Insert(const Key& k) {
    auto& b = buckets_[static_cast<std::size_t>(Vb(k.time)) & mask()];
    b.insert(std::upper_bound(b.begin(), b.end(), k, KeyDescending), k);
  }

  void Push(const Key& k) override {
    if (!staged_push_ || KeyLess(k, pushed_min_)) {
      pushed_min_ = k;
      staged_push_ = true;
    }
    Insert(k);
    ++count_;
    // Quadruple (not double): post-grow occupancy lands at ~1/2, so a
    // monotone ramp to n keys resizes log4(n) times and reinserts ~2n/3
    // keys total instead of ~2n.
    if (count_ > buckets_.size() * 2) Resize(buckets_.size() * 4);
  }

  // Pops up to `max` keys of the earliest due day, in (time, seq) order.
  // Deliberately no shrink-on-pop: shrinking streams every bucket, frees
  // the tail vectors, and evicts the event pool from cache — measured as
  // the single largest cost of draining a million-event queue, while
  // sparse buckets only cost the cursor cheap empty-header probes. The
  // array is O(peak pending) until the scheduler is destroyed.
  std::size_t PopDue(Key* out, std::size_t max) {
    if (count_ == 0) return 0;
    std::vector<Key>* b = nullptr;
    for (std::size_t lap = 0; lap < buckets_.size(); ++lap) {
      auto& cand = buckets_[static_cast<std::size_t>(cur_vb_) & mask()];
      if (!cand.empty() && Vb(cand.back().time) == cur_vb_) {
        b = &cand;
        break;
      }
      ++cur_vb_;
    }
    if (b == nullptr) {
      // A whole lap held nothing due: the next event is more than one
      // year out. Jump the cursor straight to the global minimum.
      for (auto& cand : buckets_) {
        if (cand.empty()) continue;
        if (b == nullptr || KeyLess(cand.back(), b->back())) b = &cand;
      }
      cur_vb_ = Vb(b->back().time);
    }
    // The bucket is sorted descending, so its back holds the day's keys
    // smallest-first; other years' copies of the same day sort strictly
    // later and stop the take.
    std::size_t n = 0;
    while (n < max && !b->empty() && Vb(b->back().time) == cur_vb_) {
      out[n++] = b->back();
      b->pop_back();
    }
    count_ -= n;
    return n;
  }

  bool PopMin(Key* out) override {
    if (PopDue(out, 1) == 0) return false;
    // The same day's next key usually pops next (single-Step() path;
    // the staged Run() prefetches whole stages instead).
    auto& b = buckets_[static_cast<std::size_t>(cur_vb_) & mask()];
    if (!b.empty()) PrefetchSlot(b.back().slot);
    return true;
  }

  void Resize(std::size_t nbuckets) {
    std::vector<Key> all;
    all.reserve(count_);
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (auto& b : buckets_) {
      for (const Key& k : b) {
        if (first || k.time < lo) lo = k.time;
        if (first || k.time > hi) hi = k.time;
        first = false;
        all.push_back(k);
      }
      b.clear();
    }
    // clear()+resize(), not assign(): surviving buckets keep their
    // heap capacity, so a grow never frees an allocation and the next
    // fill re-uses warm memory. Only a shrink's tail is released.
    buckets_.resize(nbuckets);
    // Aim for ~16 keys per virtual day: wide enough that the staged
    // drain prefetches a whole day of records in one overlapped batch
    // (and the cursor rarely crosses empty days), narrow enough that
    // bucket insertion stays a short memmove.
    if (count_ > 0 && hi > lo) SetWidth((hi - lo) / count_ * 16.0);
    for (const Key& k : all) Insert(k);
    cur_vb_ = count_ > 0 ? Vb(lo) : Vb(now());
  }

  std::size_t mask() const { return buckets_.size() - 1; }

  std::vector<std::vector<Key>> buckets_;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::int64_t cur_vb_ = 0;
  std::size_t count_ = 0;  // stored keys, stale included
  Key pushed_min_{};       // smallest key pushed since the current stage
  bool staged_push_ = false;
};

}  // namespace

std::unique_ptr<Scheduler> MakeCalendarScheduler() {
  return std::make_unique<CalendarScheduler>();
}

}  // namespace hd::des
