/* hdlint negative case: race-check violations.
 * Expect: HD201 (write to a sharedRO array — a cross-thread write-write
 * race) at the exact line:col of the store, plus HD204 (element write into
 * a read-before-write outer array lands in a per-thread private copy). */
int main() {
  char word[32];
  int histogram[64];
  int bias[8];
  int b;
  int i;
  for (i = 0; i < 64; i++) histogram[i] = 0;
  for (i = 0; i < 8; i++) bias[i] = i;
#pragma mapreduce mapper key(word) value(b) sharedRO(bias)
  while (getRecord(word)) {
    b = bias[0];
    bias[0] = b + 1;
    histogram[strlen(word) % 64] = histogram[strlen(word) % 64] + 1;
    printf("%s\t%d\n", word, b);
  }
  return 0;
}
