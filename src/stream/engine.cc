#include "stream/engine.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/prng.h"
#include "hadoop/checkpoint.h"

namespace hd::stream {

using hadoop::CheckpointError;
namespace ckpt = hadoop::ckpt;

namespace {

// WindowStats carry a static seal-reason literal; restore maps the stored
// string back onto the same literals so the pointers stay valid.
const char* SealReasonLiteral(const std::string& s) {
  if (s == "count") return "count";
  if (s == "time") return "time";
  if (s == "horizon") return "horizon";
  if (s.empty()) return "";
  throw CheckpointError("corrupt checkpoint: unknown seal reason '" + s +
                        "'");
}

void WriteWindow(json::Writer& w, const WindowStats& ws) {
  w.BeginObject();
  w.Key("seq").Int(ws.seq);
  w.Key("records").Int(ws.records);
  w.Key("open").Number(ws.open_sec);
  w.Key("seal").Number(ws.seal_sec);
  w.Key("submit").Number(ws.submit_sec);
  w.Key("finish").Number(ws.finish_sec);
  w.Key("reason").String(ws.seal_reason);
  w.Key("empty").Bool(ws.empty);
  w.Key("shed").Bool(ws.shed);
  w.EndObject();
}

WindowStats ReadWindow(const json::Value& v) {
  WindowStats ws;
  ws.seq = ckpt::Int(v, "seq");
  ws.records = ckpt::Int(v, "records");
  ws.open_sec = ckpt::Num(v, "open");
  ws.seal_sec = ckpt::Num(v, "seal");
  ws.submit_sec = ckpt::Num(v, "submit");
  ws.finish_sec = ckpt::Num(v, "finish");
  ws.seal_reason = SealReasonLiteral(ckpt::Str(v, "reason"));
  ws.empty = ckpt::Bool(v, "empty");
  ws.shed = ckpt::Bool(v, "shed");
  return ws;
}

void WriteDoubles(json::Writer& w, const char* key,
                  const std::vector<double>& xs) {
  w.Key(key).BeginArray();
  for (double x : xs) w.Number(x);
  w.EndArray();
}

std::vector<double> ReadDoubles(const json::Value& obj, const char* key) {
  std::vector<double> out;
  for (const json::Value& v : ckpt::Arr(obj, key)) out.push_back(v.number);
  return out;
}

// label/slo/offered_rate are rebuilt from the spec at AddPipeline and the
// stability verdict is recomputed at finalize, so only the accumulators
// and steady-state sample sets travel through the checkpoint.
void WritePipelineMetrics(json::Writer& w, const PipelineMetrics& m) {
  w.Key("records_arrived").Int(m.records_arrived);
  w.Key("records_processed").Int(m.records_processed);
  w.Key("records_shed").Int(m.records_shed);
  w.Key("windows_sealed").Int(m.windows_sealed);
  w.Key("windows_empty").Int(m.windows_empty);
  w.Key("windows_shed").Int(m.windows_shed);
  w.Key("windows_shed_steady").Int(m.windows_shed_steady);
  w.Key("windows_completed").Int(m.windows_completed);
  w.Key("seals_by_count").Int(m.seals_by_count);
  w.Key("seals_by_time").Int(m.seals_by_time);
  w.Key("slo_violations").Int(m.slo_violations);
  WriteDoubles(w, "latencies", m.latencies_sec);
  WriteDoubles(w, "lags", m.watermark_lags_sec);
  WriteDoubles(w, "depths", m.queue_depths);
  w.Key("backlog_at_horizon").Int(m.backlog_at_horizon);
  w.Key("max_queue_depth").Int(m.max_queue_depth);
}

void ReadPipelineMetrics(const json::Value& obj, PipelineMetrics& m) {
  m.records_arrived = ckpt::Int(obj, "records_arrived");
  m.records_processed = ckpt::Int(obj, "records_processed");
  m.records_shed = ckpt::Int(obj, "records_shed");
  m.windows_sealed = ckpt::Int(obj, "windows_sealed");
  m.windows_empty = ckpt::Int(obj, "windows_empty");
  m.windows_shed = ckpt::Int(obj, "windows_shed");
  m.windows_shed_steady = ckpt::Int(obj, "windows_shed_steady");
  m.windows_completed = ckpt::Int(obj, "windows_completed");
  m.seals_by_count = ckpt::Int(obj, "seals_by_count");
  m.seals_by_time = ckpt::Int(obj, "seals_by_time");
  m.slo_violations = ckpt::Int(obj, "slo_violations");
  m.latencies_sec = ReadDoubles(obj, "latencies");
  m.watermark_lags_sec = ReadDoubles(obj, "lags");
  m.queue_depths = ReadDoubles(obj, "depths");
  m.backlog_at_horizon = ckpt::Int(obj, "backlog_at_horizon");
  m.max_queue_depth = ckpt::Int(obj, "max_queue_depth");
}

}  // namespace

bool StreamMetrics::Stable() const {
  for (const PipelineMetrics& p : pipelines) {
    if (!p.stable) return false;
  }
  return true;
}

double StreamMetrics::AchievedQps() const {
  if (horizon_sec <= 0.0) return 0.0;
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.records_processed;
  return static_cast<double>(n) / horizon_sec;
}

double StreamMetrics::OfferedQps() const {
  double r = 0.0;
  for (const PipelineMetrics& p : pipelines) r += p.offered_rate_per_sec;
  return r;
}

std::int64_t StreamMetrics::TotalRecordsShed() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.records_shed;
  return n;
}

std::int64_t StreamMetrics::TotalSloViolations() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.slo_violations;
  return n;
}

std::int64_t StreamMetrics::TotalWindowsCompleted() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.windows_completed;
  return n;
}

StreamEngine::StreamEngine(
    hadoop::ClusterConfig cfg,
    std::unique_ptr<multijob::InterJobScheduler> scheduler)
    : multijob::MultiJobEngine(std::move(cfg), std::move(scheduler)) {}

int StreamEngine::AddPipeline(PipelineSpec spec) {
  HD_CHECK_MSG(!streaming_, "pipelines must be registered before RunStream");
  ValidatePipelineSpec(spec);
  const int id = static_cast<int>(pipes_.size());
  pipes_.push_back(std::make_unique<Pipeline>(std::move(spec)));
  Pipeline& pipe = *pipes_.back();
  pipe.metrics.label = pipe.spec.label;
  pipe.metrics.slo_sec = pipe.spec.slo_sec;
  pipe.metrics.offered_rate_per_sec = pipe.spec.source.mean_rate_per_sec;
  return id;
}

trace::Track StreamEngine::StreamTrack(int p) const {
  // One pid above the cluster nodes' pid range, one lane per pipeline.
  return trace::Track{cfg_.trace_pid_base + cfg_.num_slaves + 1, p};
}

StreamMetrics StreamEngine::RunStream(double horizon_sec, double warmup_sec) {
  HD_CHECK_MSG(horizon_sec > 0.0, "stream horizon must be positive");
  HD_CHECK_MSG(warmup_sec >= 0.0 && warmup_sec < horizon_sec,
               "warmup must lie in [0, horizon)");
  HD_CHECK_MSG(!streaming_, "RunStream is not reentrant");
  if (stream_restored_) {
    // The snapshot pinned the service window, and RestoreExtraSections
    // already re-armed the captured trigger/arrival/horizon frontier
    // against it; continuing under a different one would diverge from the
    // uninterrupted run.
    HD_CHECK_MSG(horizon_sec == horizon_sec_ && warmup_sec == warmup_sec_,
                 "restored stream run must keep the checkpointed horizon "
                 "and warmup");
  }
  streaming_ = true;
  horizon_sec_ = horizon_sec;
  warmup_sec_ = warmup_sec;

  if (cfg_.sink != nullptr && !pipes_.empty()) {
    cfg_.sink->NameProcess(cfg_.trace_pid_base + cfg_.num_slaves + 1,
                           "stream");
  }
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    Pipeline& pipe = *pipes_[p];
    if (cfg_.sink != nullptr) {
      cfg_.sink->NameThread(StreamTrack(static_cast<int>(p)),
                            pipe.spec.label);
    }
    if (!stream_restored_) {
      pipe.open.open_sec = now();
      ArmTimeTrigger(static_cast<int>(p));
      ScheduleNextArrival(static_cast<int>(p));
    }
  }
  if (!pipes_.empty() && !stream_restored_) {
    // The service horizon: sources already stop before it (no arrival is
    // scheduled at or past horizon), this seals every open window without
    // reopening and snapshots the ingress backlog the run leaves behind.
    events_.At(horizon_sec_, &StreamEngine::HorizonEvent, this);
  }
  if (cfg_.timeseries != nullptr) {
    for (std::size_t p = 0; p < pipes_.size(); ++p) {
      RegisterPipelineTelemetry(static_cast<int>(p));
    }
  }

  StreamMetrics out;
  out.workload = Run();  // drains every admitted window
  out.horizon_sec = horizon_sec_;
  out.warmup_sec = warmup_sec_;
  for (std::unique_ptr<Pipeline>& pipe : pipes_) {
    // A stop_at_checkpoint halt leaves the service mid-flight: report the
    // accumulated metrics as captured — the stability verdict and the
    // registry rollup belong to the restored continuation.
    if (!halted()) FinalizePipeline(*pipe);
    out.pipelines.push_back(pipe->metrics);
  }
  streaming_ = false;
  return out;
}

void StreamEngine::RegisterPipelineTelemetry(int p) {
  trace::TimeSeries& ts = *cfg_.timeseries;
  Pipeline* pipe = pipes_[static_cast<std::size_t>(p)].get();
  const std::string pfx = "stream." + pipe->spec.label + ".";
  ts.AddGaugeProbe(pfx + "queue_depth", [pipe] {
    return static_cast<double>(pipe->pending.size()) + pipe->inflight;
  });
  ts.AddGaugeProbe(pfx + "inflight", [pipe] {
    return static_cast<double>(pipe->inflight);
  });
  ts.AddGaugeProbe(pfx + "watermark_lag", [this, pipe] {
    return now() - pipe->watermark_sec;
  });
  ts.AddCumulativeProbe(pfx + "records_arrived", [pipe] {
    return static_cast<double>(pipe->metrics.records_arrived);
  });
  ts.AddCumulativeProbe(pfx + "records_processed", [pipe] {
    return static_cast<double>(pipe->metrics.records_processed);
  });
  ts.AddCumulativeProbe(pfx + "records_shed", [pipe] {
    return static_cast<double>(pipe->metrics.records_shed);
  });
  ts.AddCumulativeProbe(pfx + "windows_completed", [pipe] {
    return static_cast<double>(pipe->metrics.windows_completed);
  });
  ts.AddCumulativeProbe(pfx + "slo_violations", [pipe] {
    return static_cast<double>(pipe->metrics.slo_violations);
  });

  // Default SLO rules from the pipeline spec: a shed-rate budget and a
  // deadline-miss budget as multi-window burn rates, plus a queue-depth
  // threshold at the admission bound (the instability signal the
  // stability verdict reads post-hoc, live).
  const trace::Track track = StreamTrack(p);
  trace::SloRule shed;
  shed.name = pfx + "shed_budget_burn";
  shed.kind = trace::SloRule::Kind::kBurnRate;
  shed.bad_series = pfx + "records_shed";
  shed.total_series = pfx + "records_arrived";
  shed.budget = pipe->spec.shed_budget_fraction;
  shed.track = track;
  ts.slo().AddRule(shed);

  trace::SloRule miss;
  miss.name = pfx + "deadline_miss_burn";
  miss.kind = trace::SloRule::Kind::kBurnRate;
  miss.bad_series = pfx + "slo_violations";
  miss.total_series = pfx + "windows_completed";
  miss.budget = pipe->spec.miss_budget_fraction;
  miss.track = track;
  ts.slo().AddRule(miss);

  trace::SloRule depth;
  depth.name = pfx + "queue_depth_high";
  depth.kind = trace::SloRule::Kind::kAbove;
  depth.series = pfx + "queue_depth";
  depth.threshold = static_cast<double>(pipe->spec.max_inflight_windows +
                                        pipe->spec.max_pending_windows);
  depth.track = track;
  ts.slo().AddRule(depth);
}

void StreamEngine::ArrivalEvent(void* ctx, const des::Payload& p) {
  static_cast<StreamEngine*>(ctx)->OnArrival(static_cast<int>(p.u0));
}

void StreamEngine::TimeTriggerEvent(void* ctx, const des::Payload& p) {
  static_cast<StreamEngine*>(ctx)->SealWindow(static_cast<int>(p.u0), "time");
}

void StreamEngine::HorizonEvent(void* ctx, const des::Payload&) {
  static_cast<StreamEngine*>(ctx)->SealAtHorizon();
}

void StreamEngine::SealAtHorizon() {
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    SealWindow(static_cast<int>(p), "horizon");
    Pipeline& pipe = *pipes_[p];
    pipe.metrics.backlog_at_horizon =
        static_cast<std::int64_t>(pipe.pending.size()) + pipe.inflight;
  }
}

void StreamEngine::ScheduleNextArrival(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const double t = pipe.source.NextArrival(now());
  // Also false for +infinity (exhausted replay source).
  if (!(t < horizon_sec_)) {
    pipe.next_arrival = -1.0;
    return;
  }
  pipe.next_arrival = t;
  events_.At(t, &StreamEngine::ArrivalEvent, this,
             des::Payload{static_cast<std::uint64_t>(p), 0});
}

void StreamEngine::OnArrival(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  ++pipe.metrics.records_arrived;
  ++pipe.open.records;
  // Sealing (which arms the next window's time trigger) happens before the
  // next arrival is drawn, so at an exact count/time tie the trigger holds
  // the earlier insertion sequence — the convention pipeline.h documents.
  if (pipe.open.records >= pipe.spec.trigger.count) SealWindow(p, "count");
  ScheduleNextArrival(p);
}

void StreamEngine::ArmTimeTrigger(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const double when = pipe.open.open_sec + pipe.spec.trigger.span_sec;
  if (when >= horizon_sec_) return;  // the horizon seal covers this window
  pipe.trigger_at = when;
  pipe.time_trigger =
      events_.At(when, &StreamEngine::TimeTriggerEvent, this,
                 des::Payload{static_cast<std::uint64_t>(p), 0});
}

void StreamEngine::SealWindow(int p, const char* reason) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const bool at_horizon = std::strcmp(reason, "horizon") == 0;
  WindowStats w;
  w.seq = pipe.next_seq++;
  w.records = pipe.open.records;
  w.open_sec = pipe.open.open_sec;
  w.seal_sec = now();
  w.seal_reason = reason;
  // Retire the armed time trigger (a no-op when this seal *is* the
  // trigger firing — its handle is already spent).
  events_.Cancel(pipe.time_trigger);
  pipe.time_trigger = {};
  pipe.trigger_at = -1.0;
  ++pipe.metrics.windows_sealed;
  if (std::strcmp(reason, "count") == 0) ++pipe.metrics.seals_by_count;
  if (std::strcmp(reason, "time") == 0) ++pipe.metrics.seals_by_time;
  if (!at_horizon) {
    pipe.open = Window{};
    pipe.open.open_sec = now();
    ArmTimeTrigger(p);
  }
  if (w.records == 0) {
    // A span elapsed with no arrivals: no job to run, the watermark passes
    // immediately.
    w.empty = true;
    ++pipe.metrics.windows_empty;
    w.submit_sec = w.seal_sec;
    w.finish_sec = w.seal_sec;
    FinishWindow(p, std::move(w));
  } else {
    AdmitOrQueue(p, std::move(w));
  }
  SampleQueueDepth(pipe);
}

void StreamEngine::AdmitOrQueue(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  if (pipe.inflight < pipe.spec.max_inflight_windows) {
    SubmitWindow(p, std::move(w));
    return;
  }
  const bool at_bound =
      static_cast<int>(pipe.pending.size()) >= pipe.spec.max_pending_windows;
  if (at_bound && pipe.spec.backpressure == Backpressure::kShed) {
    w.shed = true;
    ++pipe.metrics.windows_shed;
    if (InSteadyState(w)) ++pipe.metrics.windows_shed_steady;
    pipe.metrics.records_shed += w.records;
    w.submit_sec = w.seal_sec;
    w.finish_sec = w.seal_sec;  // the watermark passes a shed window
    FinishWindow(p, std::move(w));
    return;
  }
  // kBlock rides past the bound: an open-loop source cannot be paused, so
  // the queue absorbs the excess and sustained depth shows up in the
  // stability verdict instead.
  pipe.pending.push_back(std::move(w));
}

multijob::JobSpec StreamEngine::MakeWindowJobSpec(int p, std::int64_t seq,
                                                  std::int64_t records) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const WindowJobTemplate& t = pipe.spec.job;
  hadoop::CalibratedTaskSource::Params tp;
  tp.num_maps = static_cast<int>((records + t.records_per_map - 1) /
                                 t.records_per_map);
  tp.num_reducers = t.num_reducers;
  tp.cpu_task_sec = t.cpu_task_sec;
  tp.gpu_task_sec = t.gpu_task_sec;
  tp.variation = t.variation;
  tp.map_output_bytes = t.map_output_bytes;
  tp.reduce_sec = t.reduce_sec;
  // Per-window task timings derive from (pipeline seed, window seq), so a
  // same-seed rerun — or a checkpoint restore — replays the exact workload
  // window by window.
  tp.seed = SplitMix64(SplitMix64(pipe.spec.source.seed) ^
                       static_cast<std::uint64_t>(seq));
  window_sources_.push_back(
      std::make_unique<hadoop::CalibratedTaskSource>(tp));

  multijob::JobSpec js;
  js.source = window_sources_.back().get();
  js.policy = pipe.spec.policy;
  js.pool = pipe.spec.pool;
  js.label = pipe.spec.label + "/w" + std::to_string(seq);
  return js;
}

void StreamEngine::SubmitWindow(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  w.submit_sec = now();
  multijob::JobSpec js = MakeWindowJobSpec(p, w.seq, w.records);
  js.deadline_sec = w.seal_sec + pipe.spec.slo_sec;
  const int id = Submit(now(), std::move(js));
  window_jobs_.emplace(id, WindowRef{p, w.seq, w.records});
  ++pipe.inflight;
  inflight_windows_.emplace(id, std::make_pair(p, std::move(w)));
}

void StreamEngine::OnJobCompleted(const multijob::JobStats& stats) {
  const auto it = inflight_windows_.find(stats.job_id);
  if (it == inflight_windows_.end()) return;  // a batch job sharing the run
  const int p = it->second.first;
  WindowStats w = std::move(it->second.second);
  inflight_windows_.erase(it);
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  --pipe.inflight;
  w.finish_sec = stats.finish_sec;
  pipe.metrics.records_processed += w.records;
  FinishWindow(p, std::move(w));
  // The freed admission slot pulls the oldest queued window.
  while (!pipe.pending.empty() &&
         pipe.inflight < pipe.spec.max_inflight_windows) {
    WindowStats next = std::move(pipe.pending.front());
    pipe.pending.pop_front();
    SubmitWindow(p, std::move(next));
  }
}

void StreamEngine::FinishWindow(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const bool ran = !w.shed && !w.empty;  // executed as a job instance
  if (!w.shed) ++pipe.metrics.windows_completed;
  if (ran && cfg_.timeseries != nullptr) {
    // Per-interval latency percentiles (tumbling buckets, no warmup
    // filter: the timeline should show ramp-up too).
    cfg_.timeseries->windowed("stream." + pipe.spec.label + ".latency_sec")
        .Record(now(), w.Latency());
  }
  if (ran && InSteadyState(w)) {
    pipe.metrics.latencies_sec.push_back(w.Latency());
    if (w.Latency() > pipe.spec.slo_sec) ++pipe.metrics.slo_violations;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->distribution("stream." + pipe.spec.label + ".window_latency_sec")
          .Record(w.Latency());
    }
  }
  // Ordered low-watermark: advance over the contiguous completed prefix.
  pipe.done_seals[w.seq] = w.seal_sec;
  for (auto it = pipe.done_seals.find(pipe.watermark_seq);
       it != pipe.done_seals.end();
       it = pipe.done_seals.find(pipe.watermark_seq)) {
    pipe.watermark_sec = it->second;
    pipe.done_seals.erase(it);
    ++pipe.watermark_seq;
  }
  if (cfg_.timeseries != nullptr) {
    cfg_.timeseries
        ->windowed("stream." + pipe.spec.label + ".watermark_lag_sec")
        .Record(now(), now() - pipe.watermark_sec);
  }
  if (InSteadyState(w)) {
    const double lag = now() - pipe.watermark_sec;
    pipe.metrics.watermark_lags_sec.push_back(lag);
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->distribution("stream." + pipe.spec.label + ".watermark_lag_sec")
          .Record(lag);
    }
  }
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("seq", w.seq),
                        trace::Arg::Int("records", w.records),
                        trace::Arg::Str("seal", w.seal_reason)};
    if (ran) {
      cfg_.sink->Span("stream", "window", StreamTrack(p), w.seal_sec,
                      w.finish_sec - w.seal_sec, std::move(args));
    } else {
      cfg_.sink->Instant("stream", w.shed ? "window_shed" : "window_empty",
                         StreamTrack(p), w.seal_sec, std::move(args));
    }
  }
}

void StreamEngine::SampleQueueDepth(Pipeline& pipe) {
  const std::int64_t depth =
      static_cast<std::int64_t>(pipe.pending.size()) + pipe.inflight;
  pipe.metrics.max_queue_depth =
      std::max(pipe.metrics.max_queue_depth, depth);
  if (now() >= warmup_sec_) {
    pipe.metrics.queue_depths.push_back(static_cast<double>(depth));
  }
}

void StreamEngine::FinalizePipeline(Pipeline& pipe) {
  PipelineMetrics& m = pipe.metrics;
  const std::vector<double>& d = m.queue_depths;
  const std::size_t third = d.size() / 3;
  double growth = 1.0;
  if (third > 0) {
    double first = 0.0, last = 0.0;
    for (std::size_t i = 0; i < third; ++i) first += d[i];
    for (std::size_t i = d.size() - third; i < d.size(); ++i) last += d[i];
    // The +1-window smoothing keeps a near-empty queue from exploding the
    // ratio, mirroring multijob's QueueWaitGrowth tau.
    growth = (last / static_cast<double>(third) + 1.0) /
             (first / static_cast<double>(third) + 1.0);
  }
  m.depth_growth = growth;
  const std::int64_t bound =
      pipe.spec.max_inflight_windows + pipe.spec.max_pending_windows;
  m.stable = m.windows_shed_steady == 0 && growth <= 2.0 &&
             m.backlog_at_horizon <= bound;
  if (cfg_.metrics != nullptr) {
    trace::Registry& reg = *cfg_.metrics;
    const std::string pfx = "stream." + pipe.spec.label + ".";
    reg.counter(pfx + "records_arrived").Set(m.records_arrived);
    reg.counter(pfx + "records_processed").Set(m.records_processed);
    reg.counter(pfx + "records_shed").Set(m.records_shed);
    reg.counter(pfx + "windows_sealed").Set(m.windows_sealed);
    reg.counter(pfx + "windows_empty").Set(m.windows_empty);
    reg.counter(pfx + "windows_shed").Set(m.windows_shed);
    reg.counter(pfx + "windows_completed").Set(m.windows_completed);
    reg.counter(pfx + "slo_violations").Set(m.slo_violations);
    reg.counter(pfx + "max_queue_depth").Set(m.max_queue_depth);
    reg.gauge(pfx + "depth_growth").Set(m.depth_growth);
    reg.gauge(pfx + "stable").Set(m.stable ? 1.0 : 0.0);
    reg.gauge(pfx + "watermark_sec").Set(pipe.watermark_sec);
  }
}

// --- Checkpoint / warm restart ---------------------------------------------

void StreamEngine::WriteJobExtra(json::Writer& w,
                                 const hadoop::JobState& job) const {
  const auto it = window_jobs_.find(job.id);
  if (it == window_jobs_.end()) return;  // a batch job sharing the run
  w.Key("window").BeginObject();
  w.Key("pipe").Int(it->second.pipe);
  w.Key("seq").Int(it->second.seq);
  w.Key("records").Int(it->second.records);
  w.EndObject();
}

void StreamEngine::WriteExtraSections(json::Writer& w) {
  if (!streaming_ || pipes_.empty()) return;
  w.Key("stream").BeginObject();
  w.Key("horizon").Number(horizon_sec_);
  w.Key("warmup").Number(warmup_sec_);
  w.Key("pipes").BeginArray();
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    const Pipeline& pipe = *pipes_[p];
    w.BeginObject();
    w.Key("label").String(pipe.spec.label);
    w.Key("next_seq").Int(pipe.next_seq);
    w.Key("watermark_seq").Int(pipe.watermark_seq);
    w.Key("watermark_sec").Number(pipe.watermark_sec);
    w.Key("open").BeginObject();
    w.Key("records").Int(pipe.open.records);
    w.Key("open_sec").Number(pipe.open.open_sec);
    w.EndObject();
    w.Key("trigger").Number(pipe.trigger_at);
    w.Key("next_arrival").Number(pipe.next_arrival);
    const std::array<std::uint64_t, 4> rng = pipe.source.rng_state();
    w.Key("rng").BeginObject();
    w.Key("s0").String(ckpt::U64Str(rng[0]));
    w.Key("s1").String(ckpt::U64Str(rng[1]));
    w.Key("s2").String(ckpt::U64Str(rng[2]));
    w.Key("s3").String(ckpt::U64Str(rng[3]));
    w.EndObject();
    w.Key("replay_next")
        .Int(static_cast<std::int64_t>(pipe.source.replay_next()));
    w.Key("pending").BeginArray();
    for (const WindowStats& ws : pipe.pending) WriteWindow(w, ws);
    w.EndArray();
    w.Key("done_seals").BeginArray();
    for (const auto& [seq, seal] : pipe.done_seals) {
      w.BeginArray();
      w.Int(seq);
      w.Number(seal);
      w.EndArray();
    }
    w.EndArray();
    w.Key("inflight").BeginArray();
    for (const auto& [job_id, pw] : inflight_windows_) {
      if (pw.first != static_cast<int>(p)) continue;
      w.BeginArray();
      w.Int(job_id);
      WriteWindow(w, pw.second);
      w.EndArray();
    }
    w.EndArray();
    w.Key("metrics").BeginObject();
    WritePipelineMetrics(w, pipe.metrics);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

multijob::JobSpec StreamEngine::MakeRestoredJobSpec(
    const json::Value& entry) {
  const json::Value* win = entry.Find("window");
  // Untagged jobs are batch workloads: the base engine's diagnostic (the
  // caller must re-submit them) applies.
  if (win == nullptr) return MultiJobEngine::MakeRestoredJobSpec(entry);
  const int id = static_cast<int>(ckpt::Int(entry, "id"));
  const int p = static_cast<int>(ckpt::Int(*win, "pipe"));
  if (p < 0 || p >= static_cast<int>(pipes_.size())) {
    throw CheckpointError(
        "corrupt checkpoint: window job references pipeline " +
        std::to_string(p));
  }
  const std::int64_t seq = ckpt::Int(*win, "seq");
  const std::int64_t records = ckpt::Int(*win, "records");
  // Keep the tag table current so checkpoints written by the restored
  // continuation tag these jobs identically.
  window_jobs_[id] = WindowRef{p, seq, records};
  return MakeWindowJobSpec(p, seq, records);
}

void StreamEngine::RestoreExtraSections(const json::Value& doc) {
  const json::Value* sec = doc.Find("stream");
  if (sec == nullptr) {
    if (!pipes_.empty()) {
      throw CheckpointError(
          "this engine has registered pipelines but the checkpoint was "
          "written by a batch-only run");
    }
    return;
  }
  if (pipes_.empty()) {
    throw CheckpointError(
        "checkpoint holds stream state — register the original pipelines "
        "(AddPipeline) before restoring");
  }
  horizon_sec_ = ckpt::Num(*sec, "horizon");
  warmup_sec_ = ckpt::Num(*sec, "warmup");
  const double captured = ckpt::Num(doc, "time");
  const auto& arr = ckpt::Arr(*sec, "pipes");
  if (arr.size() != pipes_.size()) {
    throw CheckpointError(
        "checkpoint holds " + std::to_string(arr.size()) +
        " pipelines but " + std::to_string(pipes_.size()) +
        " are registered");
  }
  inflight_windows_.clear();
  for (std::size_t p = 0; p < arr.size(); ++p) {
    const json::Value& e = arr[p];
    Pipeline& pipe = *pipes_[p];
    if (ckpt::Str(e, "label") != pipe.spec.label) {
      throw CheckpointError("pipeline " + std::to_string(p) + " is '" +
                            ckpt::Str(e, "label") +
                            "' in the checkpoint but '" + pipe.spec.label +
                            "' here");
    }
    pipe.next_seq = ckpt::Int(e, "next_seq");
    pipe.watermark_seq = ckpt::Int(e, "watermark_seq");
    pipe.watermark_sec = ckpt::Num(e, "watermark_sec");
    const json::Value& open = ckpt::Get(e, "open");
    pipe.open = Window{};
    pipe.open.records = ckpt::Int(open, "records");
    pipe.open.open_sec = ckpt::Num(open, "open_sec");
    pipe.trigger_at = ckpt::Num(e, "trigger");
    pipe.next_arrival = ckpt::Num(e, "next_arrival");
    const json::Value& rng = ckpt::Get(e, "rng");
    pipe.source.set_rng_state({ckpt::U64(rng, "s0"), ckpt::U64(rng, "s1"),
                               ckpt::U64(rng, "s2"), ckpt::U64(rng, "s3")});
    pipe.source.set_replay_next(
        static_cast<std::size_t>(ckpt::Int(e, "replay_next")));
    pipe.pending.clear();
    for (const json::Value& v : ckpt::Arr(e, "pending")) {
      pipe.pending.push_back(ReadWindow(v));
    }
    pipe.done_seals.clear();
    for (const json::Value& v : ckpt::Arr(e, "done_seals")) {
      if (!v.is_array() || v.array.size() != 2 ||
          !v.array[0].is_number() || !v.array[1].is_number()) {
        throw CheckpointError("corrupt checkpoint: done_seals entries "
                              "must be [seq, seal] pairs");
      }
      pipe.done_seals[static_cast<std::int64_t>(v.array[0].number)] =
          v.array[1].number;
    }
    pipe.inflight = 0;
    for (const json::Value& v : ckpt::Arr(e, "inflight")) {
      if (!v.is_array() || v.array.size() != 2 ||
          !v.array[0].is_number()) {
        throw CheckpointError("corrupt checkpoint: inflight entries must "
                              "be [job, window] pairs");
      }
      const int job_id = static_cast<int>(v.array[0].number);
      inflight_windows_.emplace(
          job_id,
          std::make_pair(static_cast<int>(p), ReadWindow(v.array[1])));
      ++pipe.inflight;
    }
    ReadPipelineMetrics(ckpt::Get(e, "metrics"), pipe.metrics);
  }
  // Re-arm the captured stream frontier now, before the base overlay
  // re-schedules pulse and attempt events: the original run inserted the
  // initial triggers, arrivals and the horizon seal ahead of every
  // heartbeat chain too, so exact-time ties (an empty-window trigger grid
  // landing on a heartbeat multiple) keep the original pop order.
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    Pipeline& pipe = *pipes_[p];
    if (pipe.trigger_at >= 0.0) {
      pipe.time_trigger =
          events_.At(pipe.trigger_at, &StreamEngine::TimeTriggerEvent, this,
                     des::Payload{static_cast<std::uint64_t>(p), 0});
    }
    if (pipe.next_arrival >= 0.0) {
      events_.At(pipe.next_arrival, &StreamEngine::ArrivalEvent, this,
                 des::Payload{static_cast<std::uint64_t>(p), 0});
    }
  }
  if (captured < horizon_sec_) {
    events_.At(horizon_sec_, &StreamEngine::HorizonEvent, this);
  }
  stream_restored_ = true;
}

}  // namespace hd::stream
