// Reproduces Fig. 6: execution-time breakdown of a single GPU task into the
// Fig. 1 phases — input read, record count, map, aggregate, sort, combine,
// output write — as percentages per benchmark.
#include "bench/bench_util.h"
#include "bench/reporter.h"

int main(int argc, char** argv) {
  using namespace hd;
  bench::Reporter rep("fig6_breakdown", argc, argv);
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;
  rep.Config("split_bytes", split_bytes);
  rep.Config("device", gpusim::DeviceConfig::TeslaK40().name);

  rep.out() << "Fig. 6: execution-time breakdown of a GPU task (%)\n\n";
  auto& t = rep.AddTable(
      "fig6", {"Benchmark", "InRead", "RecCnt", "Map", "Aggr", "Sort", "Comb",
               "OutWrite", "Total(ms)"});
  int pid = 0;
  for (const auto& b : apps::AllBenchmarks()) {
    bench::MeasureConfig cfg;
    cfg.measure_baseline = false;
    cfg.split_bytes = split_bytes;
    cfg.sink = rep.sink();
    cfg.metrics = rep.metrics();
    cfg.track.pid = pid;
    if (cfg.sink != nullptr) cfg.sink->NameProcess(pid, b.id);
    ++pid;
    const bench::MeasuredTask m = bench::MeasureTask(b, cfg);
    const auto& p = m.gpu.phases;
    const double total = p.Total();
    rep.AddModeledSeconds(total + m.CpuSec());
    auto pct = [&](double v) { return 100.0 * v / total; };
    t.Row()
        .Cell(b.id)
        .Cell(pct(p.input_read), 1)
        .Cell(pct(p.record_count), 1)
        .Cell(pct(p.map), 1)
        .Cell(pct(p.aggregate), 1)
        .Cell(pct(p.sort), 1)
        .Cell(pct(p.combine), 1)
        .Cell(pct(p.output_write), 1)
        .Cell(total * 1e3, 3);
  }
  rep.Print(t);
  rep.out() << "\nExpected shape: aggregation negligible everywhere; WC "
               "sort-heavy (long keys);\nBS dominated by output write; "
               "KM/CL map-heavy.\n";
  return rep.Finish();
}
