# Empty dependencies file for fig7_optimizations.
# This may be replaced when dependencies are built.
