// Recursive-descent parser for the mini-C dialect.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "minic/ast.h"

namespace hd::minic {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

// Parses a full translation unit (a set of function definitions).
std::unique_ptr<TranslationUnit> Parse(std::string_view source);

// Parses the body of a `#pragma mapreduce ...` directive (the text after
// "#pragma"). Returns null if the pragma is not a mapreduce directive.
// Throws ParseError on a malformed mapreduce directive.
std::unique_ptr<Directive> ParseDirective(std::string_view pragma_text,
                                          int line);

}  // namespace hd::minic
