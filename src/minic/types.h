// Type representation for the mini-C dialect.
//
// The dialect supports the scalar types the HeteroDoop benchmarks use,
// one-level pointers, and fixed or unsized arrays of scalars. Types are
// small value objects; no interning is needed at this scale.
#pragma once

#include <cstdint>
#include <string>

namespace hd::minic {

enum class Scalar : std::uint8_t {
  kVoid,
  kChar,
  kInt,     // also covers 'long' and 'size_t' (64-bit in the interpreter)
  kFloat,
  kDouble,
};

struct Type {
  Scalar scalar = Scalar::kInt;
  // 0 = plain scalar; 1 = pointer-to-scalar or array-of-scalar.
  bool is_pointer = false;
  bool is_array = false;
  std::int64_t array_size = 0;  // 0 when unknown (parameter arrays)

  static Type Void() { return {Scalar::kVoid, false, false, 0}; }
  static Type Char() { return {Scalar::kChar, false, false, 0}; }
  static Type Int() { return {Scalar::kInt, false, false, 0}; }
  static Type Float() { return {Scalar::kFloat, false, false, 0}; }
  static Type Double() { return {Scalar::kDouble, false, false, 0}; }
  static Type PointerTo(Scalar s) { return {s, true, false, 0}; }
  static Type ArrayOf(Scalar s, std::int64_t n) { return {s, false, true, n}; }

  bool IsScalarValue() const { return !is_pointer && !is_array; }
  bool IsFloating() const {
    return IsScalarValue() &&
           (scalar == Scalar::kFloat || scalar == Scalar::kDouble);
  }
  bool IsIndexable() const { return is_pointer || is_array; }

  bool operator==(const Type&) const = default;
};

// Size of one element in bytes, matching C on a 64-bit target (the paper's
// keylength/vallength clauses count elements; byte math uses these sizes).
constexpr std::int64_t ScalarSize(Scalar s) {
  switch (s) {
    case Scalar::kVoid: return 0;
    case Scalar::kChar: return 1;
    case Scalar::kInt: return 4;
    case Scalar::kFloat: return 4;
    case Scalar::kDouble: return 8;
  }
  return 0;
}

std::string TypeName(const Type& t);

}  // namespace hd::minic
