// ctest driver: writes every registered benchmark source (map / combine /
// reduce) to a file and runs the real hdlint binary over it, requiring a
// zero exit status — the shipped apps must lint clean.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "apps/benchmark.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-hdlint>\n", argv[0]);
    return 2;
  }
  const std::string hdlint = argv[1];
  int failures = 0;
  for (const auto& b : hd::apps::AllBenchmarks()) {
    const std::pair<const char*, const std::string*> parts[] = {
        {"map", &b.map_source},
        {"combine", &b.combine_source},
        {"reduce", &b.reduce_source}};
    for (const auto& [tag, src] : parts) {
      if (src->empty()) continue;
      const std::string path = b.id + "_" + tag + ".c";
      std::ofstream(path) << *src;
      const std::string cmd =
          hdlint + " " + path + " > " + path + ".lint 2>&1";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "hdlint rejected %s:\n", path.c_str());
        std::ifstream out(path + ".lint");
        std::string line;
        while (std::getline(out, line)) {
          std::fprintf(stderr, "  %s\n", line.c_str());
        }
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d app source(s) failed hdlint\n", failures);
    return 1;
  }
  std::printf("all registered app sources lint clean\n");
  return 0;
}
