# Empty compiler generated dependencies file for hd_hadoop.
# This may be replaced when dependencies are built.
