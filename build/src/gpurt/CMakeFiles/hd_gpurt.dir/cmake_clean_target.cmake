file(REMOVE_RECURSE
  "libhd_gpurt.a"
)
