// Record location: the runtime kernel that pre-determines the records in an
// input fileSplit (§5.2), enabling record stealing in the map kernel.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gpusim/kernel.h"

namespace hd::gpurt {

struct Record {
  std::int64_t offset = 0;
  // Length including the record terminator ('\n'), matching what getline
  // reports on the CPU path.
  std::int64_t length = 0;
};

// Finds newline-delimited records in the buffer. A trailing record without
// a final newline is still a record (its stored length counts only its
// bytes).
std::vector<Record> LocateRecords(std::string_view data);

// Charges the record-counting kernel: every byte of the input is scanned
// once with vectorised loads, spread across the launched lanes.
void ChargeLocateKernel(gpusim::KernelSim& kernel, std::int64_t input_bytes);

}  // namespace hd::gpurt
