#include "minic/lexer.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace hd::minic {
namespace {

const std::unordered_map<std::string_view, Tok>& Keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"int", Tok::kKwInt},         {"char", Tok::kKwChar},
      {"float", Tok::kKwFloat},     {"double", Tok::kKwDouble},
      {"void", Tok::kKwVoid},       {"long", Tok::kKwLong},
      {"unsigned", Tok::kKwUnsigned}, {"const", Tok::kKwConst},
      {"size_t", Tok::kKwSizeT},    {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},       {"while", Tok::kKwWhile},
      {"do", Tok::kKwDo},           {"for", Tok::kKwFor},
      {"return", Tok::kKwReturn},   {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue}, {"sizeof", Tok::kKwSizeof},
  };
  return kMap;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEof()) break;
      if (Peek() == '#') {
        Token t = LexDirectiveLine();
        if (t.kind == Tok::kPragma) out.push_back(std::move(t));
        continue;
      }
      out.push_back(LexToken());
    }
    Token eof;
    eof.kind = Tok::kEof;
    eof.line = line_;
    eof.col = col_;
    out.push_back(eof);
    return out;
  }

 private:
  bool AtEof() const { return pos_ >= src_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    std::ostringstream os;
    os << "lex error at " << line_ << ":" << col_ << ": " << msg;
    throw LexError(os.str());
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEof() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '/' && Peek(1) == '/') {
        while (!AtEof() && Peek() != '\n') Advance();
        continue;
      }
      if (Peek() == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEof() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEof()) Fail("unterminated block comment");
        Advance();
        Advance();
        continue;
      }
      break;
    }
  }

  // Consumes a full '#...' line. Returns a kPragma token for #pragma lines;
  // #include and other directives are skipped (kind kEof sentinel).
  Token LexDirectiveLine() {
    Token t;
    t.line = line_;
    t.col = col_;
    std::string text;
    for (;;) {
      if (AtEof()) break;
      char c = Peek();
      if (c == '\\' && (Peek(1) == '\n' || (Peek(1) == '\r' && Peek(2) == '\n'))) {
        // Line continuation: fold into a space.
        Advance();
        while (!AtEof() && Peek() != '\n') Advance();
        if (!AtEof()) Advance();
        text += ' ';
        continue;
      }
      if (c == '\n') {
        Advance();
        break;
      }
      text += Advance();
    }
    std::string_view body(text);
    // Strip leading '#'.
    body.remove_prefix(1);
    while (!body.empty() && std::isspace(static_cast<unsigned char>(body[0]))) {
      body.remove_prefix(1);
    }
    if (body.rfind("pragma", 0) == 0) {
      t.kind = Tok::kPragma;
      body.remove_prefix(6);
      while (!body.empty() &&
             std::isspace(static_cast<unsigned char>(body[0]))) {
        body.remove_prefix(1);
      }
      t.text = std::string(body);
    } else {
      t.kind = Tok::kEof;  // ignored directive (#include etc.)
    }
    return t;
  }

  Token LexToken() {
    Token t;
    t.line = line_;
    t.col = col_;
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (!AtEof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ident += Advance();
      }
      auto it = Keywords().find(ident);
      if (it != Keywords().end()) {
        t.kind = it->second;
      } else {
        t.kind = Tok::kIdent;
      }
      t.text = std::move(ident);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexNumber();
    }
    if (c == '"') return LexString();
    if (c == '\'') return LexChar();
    return LexOperator();
  }

  Token LexNumber() {
    Token t;
    t.line = line_;
    t.col = col_;
    std::string num;
    bool is_float = false;
    // Hex literals.
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      num += Advance();
      num += Advance();
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) num += Advance();
      t.kind = Tok::kIntLit;
      t.int_value = std::strtoll(num.c_str(), nullptr, 16);
      t.text = std::move(num);
      return t;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) num += Advance();
    if (Peek() == '.') {
      is_float = true;
      num += Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) num += Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      num += Advance();
      if (Peek() == '+' || Peek() == '-') num += Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) num += Advance();
    }
    // Suffixes (f, L, u) are accepted and ignored.
    while (Peek() == 'f' || Peek() == 'F' || Peek() == 'l' || Peek() == 'L' ||
           Peek() == 'u' || Peek() == 'U') {
      if (Peek() == 'f' || Peek() == 'F') is_float = true;
      Advance();
    }
    if (is_float) {
      t.kind = Tok::kFloatLit;
      t.float_value = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = Tok::kIntLit;
      t.int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    t.text = std::move(num);
    return t;
  }

  char LexEscape() {
    char e = Advance();
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: Fail(std::string("unknown escape \\") + e);
    }
  }

  Token LexString() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::kStringLit;
    Advance();  // opening quote
    std::string s;
    for (;;) {
      if (AtEof()) Fail("unterminated string literal");
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        s += LexEscape();
      } else {
        s += c;
      }
    }
    t.text = std::move(s);
    return t;
  }

  Token LexChar() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::kCharLit;
    Advance();  // opening quote
    if (AtEof()) Fail("unterminated char literal");
    char c = Advance();
    if (c == '\\') c = LexEscape();
    t.int_value = static_cast<unsigned char>(c);
    if (Peek() != '\'') Fail("unterminated char literal");
    Advance();
    return t;
  }

  Token LexOperator() {
    Token t;
    t.line = line_;
    t.col = col_;
    char c = Advance();
    auto two = [&](char second, Tok with, Tok without) {
      if (Peek() == second) {
        Advance();
        t.kind = with;
      } else {
        t.kind = without;
      }
    };
    switch (c) {
      case '(': t.kind = Tok::kLParen; break;
      case ')': t.kind = Tok::kRParen; break;
      case '{': t.kind = Tok::kLBrace; break;
      case '}': t.kind = Tok::kRBrace; break;
      case '[': t.kind = Tok::kLBracket; break;
      case ']': t.kind = Tok::kRBracket; break;
      case ';': t.kind = Tok::kSemi; break;
      case ',': t.kind = Tok::kComma; break;
      case '~': t.kind = Tok::kTilde; break;
      case '?': t.kind = Tok::kQuestion; break;
      case ':': t.kind = Tok::kColon; break;
      case '.': t.kind = Tok::kDot; break;
      case '^': t.kind = Tok::kCaret; break;
      case '+':
        if (Peek() == '+') { Advance(); t.kind = Tok::kPlusPlus; }
        else two('=', Tok::kPlusAssign, Tok::kPlus);
        break;
      case '-':
        if (Peek() == '-') { Advance(); t.kind = Tok::kMinusMinus; }
        else if (Peek() == '>') { Advance(); t.kind = Tok::kArrow; }
        else two('=', Tok::kMinusAssign, Tok::kMinus);
        break;
      case '*': two('=', Tok::kStarAssign, Tok::kStar); break;
      case '/': two('=', Tok::kSlashAssign, Tok::kSlash); break;
      case '%': two('=', Tok::kPercentAssign, Tok::kPercent); break;
      case '=': two('=', Tok::kEq, Tok::kAssign); break;
      case '!': two('=', Tok::kNe, Tok::kBang); break;
      case '&':
        if (Peek() == '&') { Advance(); t.kind = Tok::kAndAnd; }
        else t.kind = Tok::kAmp;
        break;
      case '|':
        if (Peek() == '|') { Advance(); t.kind = Tok::kOrOr; }
        else t.kind = Tok::kPipe;
        break;
      case '<':
        if (Peek() == '<') { Advance(); t.kind = Tok::kShl; }
        else two('=', Tok::kLe, Tok::kLt);
        break;
      case '>':
        if (Peek() == '>') { Advance(); t.kind = Tok::kShr; }
        else two('=', Tok::kGe, Tok::kGt);
        break;
      default:
        Fail(std::string("unexpected character '") + c + "'");
    }
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source) { return Lexer(source).Run(); }

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEof: return "end of file";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kCharLit: return "char literal";
    case Tok::kPragma: return "#pragma";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwChar: return "'char'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwDouble: return "'double'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwLong: return "'long'";
    case Tok::kKwUnsigned: return "'unsigned'";
    case Tok::kKwConst: return "'const'";
    case Tok::kKwSizeT: return "'size_t'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwDo: return "'do'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwBreak: return "'break'";
    case Tok::kKwContinue: return "'continue'";
    case Tok::kKwSizeof: return "'sizeof'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
    case Tok::kArrow: return "'->'";
    case Tok::kDot: return "'.'";
  }
  return "?";
}

}  // namespace hd::minic
