#include "multijob/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "hadoop/checkpoint.h"

namespace hd::multijob {

using hadoop::CheckpointError;
using hadoop::JobState;
namespace ckpt = hadoop::ckpt;

MultiJobEngine::MultiJobEngine(hadoop::ClusterConfig cfg,
                               std::unique_ptr<InterJobScheduler> scheduler)
    : hadoop::ClusterCore(std::move(cfg)), scheduler_(std::move(scheduler)) {
  HD_CHECK(scheduler_ != nullptr);
  trace_job_ids_ = true;
}

int MultiJobEngine::Submit(double when, JobSpec spec) {
  HD_CHECK_MSG(when >= events_.now(), "submission scheduled in the past");
  const int id = submitted_++;
  auto job = std::make_unique<JobState>();
  job->id = id;
  job->label = spec.label;
  job->source = spec.source;
  job->policy = spec.policy;
  job->fs = spec.fs;
  job->input_path = std::move(spec.input_path);
  job->pool = spec.pool;
  job->deadline_sec = spec.deadline_sec;
  job->submit_time = when;
  InitJob(*job);
  JobState* ptr = job.get();
  jobs_.push_back(std::move(job));
  // The handle stays parallel to jobs_ so a checkpoint restore can cancel
  // activations that already fired inside the snapshot.
  activate_events_.push_back(events_.At(when, &MultiJobEngine::ActivateEvent,
                                        this,
                                        des::Payload{des::PackPtr(ptr), 0}));
  return id;
}

void MultiJobEngine::ActivateEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->Activate(
      des::UnpackPtr<JobState>(p.u0));
}

void MultiJobEngine::PulseTickEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->PulseTick(static_cast<int>(p.u0), p.u1);
}

void MultiJobEngine::BatchTickEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->BatchTick(p.u0);
}

void MultiJobEngine::CompleteJobEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->CompleteJob(
      *des::UnpackPtr<JobState>(p.u0));
}

void MultiJobEngine::Activate(JobState* job) {
  job->activated = true;
  active_.push_back(job);
  if (++active_jobs_ == 1) StartPulses();
}

void MultiJobEngine::StartPulses() {
  const std::uint64_t gen = ++pulse_gen_;
  pulse_next_.assign(health_.size(), -1.0);
  batch_next_ = -1.0;
  if (cfg_.batch_heartbeats) {
    batch_next_ = events_.now() + cfg_.heartbeat_sec;
    events_.After(cfg_.heartbeat_sec, &MultiJobEngine::BatchTickEvent, this,
                  des::Payload{gen, 0});
    return;
  }
  for (int n = 0; n < static_cast<int>(health_.size()); ++n) {
    const hadoop::NodeHealth& h = health_[static_cast<std::size_t>(n)];
    // Not-yet-joined and departed trackers get no chain; a join starts one
    // through OnClusterGrown.
    if (!h.member || h.departed) continue;
    const double offset = cfg_.heartbeat_sec * (n + 1) / (cfg_.num_slaves + 1);
    pulse_next_[static_cast<std::size_t>(n)] = events_.now() + offset;
    events_.After(offset, &MultiJobEngine::PulseTickEvent, this,
                  des::Payload{static_cast<std::uint64_t>(n), gen});
  }
}

void MultiJobEngine::PulseTick(int node_id, std::uint64_t gen) {
  if (pulse_gen_ != gen) return;  // cluster drained: retire
  // A dead (or departed) tracker sends nothing; the chain resumes at
  // recovery.
  if (!health_[static_cast<std::size_t>(node_id)].alive) {
    pulse_next_[static_cast<std::size_t>(node_id)] = -1.0;
    return;
  }
  ClusterHeartbeat(node_id);
  pulse_next_[static_cast<std::size_t>(node_id)] =
      events_.now() + cfg_.heartbeat_sec;
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), gen});
}

void MultiJobEngine::BatchTick(std::uint64_t gen) {
  if (pulse_gen_ != gen) return;  // cluster drained: retire
  for (int n = 0; n < static_cast<int>(health_.size()); ++n) {
    if (pulse_gen_ != gen) break;  // drained mid-tick
    const hadoop::NodeHealth& h = health_[static_cast<std::size_t>(n)];
    if (!h.member || h.departed || !h.alive) continue;
    ClusterHeartbeat(n);
  }
  if (pulse_gen_ != gen) return;
  batch_next_ = events_.now() + cfg_.heartbeat_sec;
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::BatchTickEvent, this,
                des::Payload{gen, 0});
}

void MultiJobEngine::OnNodeRecovered(int node_id) {
  if (active_jobs_ == 0) return;  // next Activate() restarts every pulse
  // In batch mode the cluster-wide chain never stopped; the recovered
  // node is picked up on its next tick.
  if (cfg_.batch_heartbeats) return;
  pulse_next_[static_cast<std::size_t>(node_id)] =
      events_.now() + cfg_.heartbeat_sec;
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), pulse_gen_});
}

void MultiJobEngine::OnClusterGrown(int node_id) {
  // Per-job speedup tables must cover the new tracker before it can take
  // work (InitJob sized them to the tracker count at submission).
  for (const auto& job : jobs_) {
    if (job->node_stats.size() < nodes_.size()) {
      job->node_stats.resize(nodes_.size());
    }
  }
  if (active_jobs_ == 0) return;
  if (pulse_next_.size() < health_.size()) {
    pulse_next_.resize(health_.size(), -1.0);
  }
  // Rebalance immediately — the empty tracker gets a full heartbeat
  // response right away — then join the rotation (batch mode's cluster
  // tick picks it up by itself).
  ClusterHeartbeat(node_id);
  if (!cfg_.batch_heartbeats) {
    pulse_next_[static_cast<std::size_t>(node_id)] =
        events_.now() + cfg_.heartbeat_sec;
    events_.After(cfg_.heartbeat_sec, &MultiJobEngine::PulseTickEvent, this,
                  des::Payload{static_cast<std::uint64_t>(node_id),
                               pulse_gen_});
  }
}

void MultiJobEngine::VisitActiveJobs(
    const std::function<void(hadoop::JobState&)>& fn) {
  for (JobState* job : active_) fn(*job);
}

void MultiJobEngine::ClusterHeartbeat(int node_id) {
  if (!HeartbeatDelivered(node_id)) return;
  EmitHeartbeat(node_id);
  // A blacklisted tracker keeps heartbeating but gets no work.
  if (!NodeSchedulable(node_id)) return;
  // Per-job heartbeat allowances and numMapsRemainingPerNode estimates,
  // computed once at response-construction time exactly as the single-job
  // JobTracker does (Algorithm 2 lines 8-9).
  const std::size_t n_active = active_.size();
  std::vector<int> cap(n_active);
  std::vector<int> assigned(n_active, 0);
  std::vector<double> rem_per_node(n_active);
  for (std::size_t i = 0; i < n_active; ++i) {
    cap[i] = HeartbeatCap(*active_[i], node_id);
    rem_per_node[i] =
        static_cast<double>(active_[i]->pending.size()) / cfg_.num_slaves;
  }
  const std::vector<const JobState*> active_view(active_.begin(),
                                                 active_.end());
  // Fill the response slot-by-slot so Fair/Capacity shares interleave jobs
  // within a single heartbeat, not only across heartbeats. When quota
  // preemption frees a slot the fill loop reruns for it; with
  // preemption_budget 0 (the default) MaybePreemptOn is a constant false
  // and the response is built exactly once, as before.
  do {
    for (;;) {
      std::vector<const JobState*> runnable;
      std::vector<std::size_t> index;
      for (std::size_t i = 0; i < n_active; ++i) {
        const JobState& job = *active_[i];
        if (!job.pending.empty() && assigned[i] < cap[i] &&
            NodeHasUsableSlot(job, node_id)) {
          runnable.push_back(&job);
          index.push_back(i);
        }
      }
      if (runnable.empty()) break;
      const std::size_t pick = scheduler_->PickJob(runnable, active_view);
      HD_CHECK_MSG(pick < runnable.size(), "scheduler picked out of range");
      const std::size_t i = index[pick];
      JobState& job = *active_[i];
      const std::vector<int> task = PickTasks(job, node_id, 1);
      HD_CHECK(!task.empty());
      // A bounce (forced-GPU with the GPU busy) still consumes the job's
      // allowance, as it does in the single-job response.
      ++assigned[i];
      PlaceTask(job, node_id, task[0], rem_per_node[i]);
    }
  } while (MaybePreemptOn(node_id, cap));
  // With every pending queue this node can serve drained, idle slots may
  // hunt stragglers across the active jobs.
  for (std::size_t i = 0; i < n_active; ++i) {
    MaybeSpeculate(*active_[i], node_id);
  }
}

bool MultiJobEngine::MaybePreemptOn(int node_id, std::vector<int>& cap) {
  if (cfg_.preemption_budget <= 0) return false;
  const std::vector<double>* weights = scheduler_->pool_weights();
  if (weights == nullptr || weights->empty()) return false;
  double weight_sum = 0.0;
  for (double w : *weights) weight_sum += w;
  if (weight_sum <= 0.0) return false;
  // Slot quotas follow the *registered* capacity: a resize moves every
  // pool's entitlement, which is what makes quotas meaningful under churn.
  double total_slots = 0.0;
  for (const hadoop::NodeHealth& h : health_) {
    if (h.member && !h.departed) {
      total_slots += cfg_.map_slots_per_node + cfg_.gpus_per_node;
    }
  }
  const auto pool_of = [&](const JobState& j) {
    if (j.pool < 0 || j.pool >= static_cast<int>(weights->size())) return 0;
    return j.pool;
  };
  std::vector<int> pool_running(weights->size(), 0);
  for (const JobState* j : active_) {
    pool_running[static_cast<std::size_t>(pool_of(*j))] += j->running_tasks;
  }
  const auto quota = [&](int pool) {
    return total_slots * (*weights)[static_cast<std::size_t>(pool)] /
           weight_sum;
  };
  // The claimant: an active job with pending work whose pool runs strictly
  // below floor(quota). The fill loop's allowance does not gate the claim —
  // in a saturated cluster every allowance is zero, which is exactly when
  // quota enforcement matters. A successful preemption instead transfers
  // one slot of allowance from the victim to the claimant (cap bump below)
  // so the re-run fill loop can hand it the freed slot. Earliest deadline
  // first (the EDF composition), then job id.
  const JobState* starved = nullptr;
  std::size_t starved_index = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const JobState& j = *active_[i];
    if (j.pending.empty()) continue;
    const int pool = pool_of(j);
    if (pool_running[static_cast<std::size_t>(pool)] >=
        static_cast<int>(std::floor(quota(pool)))) {
      continue;
    }
    if (starved == nullptr || j.deadline_sec < starved->deadline_sec ||
        (j.deadline_sec == starved->deadline_sec && j.id < starved->id)) {
      starved = &j;
      starved_index = i;
    }
  }
  if (starved == nullptr) return false;
  const int starved_pool = pool_of(*starved);
  const bool starved_gpu_ok = starved->policy != sched::Policy::kCpuOnly;
  // The victim: the youngest running attempt on this node from a pool
  // strictly over ceil(quota), holding a slot the claimant can use, whose
  // job still has preemption budget left and is not deadline-tighter than
  // the claimant (EDF protection — quotas never steal from a more urgent
  // window).
  const Attempt* victim = nullptr;
  for (const auto& [id, at] : running_) {
    if (at.node != node_id) continue;
    const JobState& vj = *at.job;
    const int vpool = pool_of(vj);
    if (vpool == starved_pool) continue;
    if (pool_running[static_cast<std::size_t>(vpool)] <=
        static_cast<int>(std::ceil(quota(vpool)))) {
      continue;
    }
    if (vj.result.preempted_attempts >= cfg_.preemption_budget) continue;
    if (vj.deadline_sec < starved->deadline_sec) continue;
    if (at.on_gpu && !starved_gpu_ok) continue;
    if (victim == nullptr || at.start_sec > victim->start_sec ||
        (at.start_sec == victim->start_sec && at.id > victim->id)) {
      victim = &at;
    }
  }
  if (victim == nullptr) return false;
  JobState& vjob = *victim->job;
  const int task = victim->task;
  const std::int64_t vid = victim->id;
  ++vjob.result.preempted_attempts;
  ++preemptions_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("multijob.preemptions").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("multijob", "preempt", NodeTrack(node_id, 0),
                       events_.now(),
                       {trace::Arg::Int("victim_job", vjob.id),
                        trace::Arg::Int("task", task),
                        trace::Arg::Int("for_job", starved->id)});
  }
  KillAttempt(vid, "preempted");
  // A quota kill is not a task failure: the work goes straight back to
  // pending without burning a retry or a backoff (unless a speculative
  // duplicate still runs it).
  if (!HasRunningAttempt(vjob, task)) {
    vjob.task_state[static_cast<std::size_t>(task)] =
        hadoop::TaskState::kPending;
    vjob.pending.push_back(task);
  }
  // The allowance transfer: the freed slot belongs to the claimant when
  // the fill loop re-runs, even though its heartbeat cap was computed
  // before the slot existed.
  ++cap[starved_index];
  return true;
}

void MultiJobEngine::OnTaskFinished(JobState&, int node_id) {
  // Out-of-band heartbeat on completion serves *all* jobs: the freed slot
  // may well go to a different job than the one that finished.
  if (!active_.empty()) ClusterHeartbeat(node_id);
}

void MultiJobEngine::OnJobFinished(JobState& job) {
  // The map phase just drained; the modeled shuffle/reduce tail extends to
  // result.makespan_sec. Hold the job active until then so closed-loop
  // feeders and latency metrics see full completions.
  const double delay = job.result.makespan_sec - events_.now();
  HD_CHECK(delay >= 0.0);
  events_.After(delay, &MultiJobEngine::CompleteJobEvent, this,
                des::Payload{des::PackPtr(&job), 0});
}

void MultiJobEngine::CompleteJob(JobState& job) {
  active_.erase(std::find(active_.begin(), active_.end(), &job));
  ++completed_;
  // Infinite deadline (batch) never misses.
  if (job.result.makespan_sec > job.deadline_sec) ++deadline_misses_;
  if (--active_jobs_ == 0) ++pulse_gen_;  // retire pulses lazily

  if (cfg_.sink != nullptr) {
    if (job.first_start_time > job.submit_time) {
      cfg_.sink->Span("multijob", "queue_wait", JobTrack(job),
                      job.submit_time,
                      job.first_start_time - job.submit_time,
                      {trace::Arg::Int("job", job.id),
                       trace::Arg::Int("pool", job.pool)});
    }
    cfg_.sink->Instant("multijob", "job_complete", JobTrack(job),
                       events_.now(),
                       {trace::Arg::Int("job", job.id),
                        trace::Arg::Str("label", job.label)});
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("multijob.jobs_completed").Add(1);
    cfg_.metrics->distribution("multijob.queue_wait_sec")
        .Record(job.first_start_time - job.submit_time);
    cfg_.metrics->distribution("multijob.job_latency_sec")
        .Record(job.result.makespan_sec - job.submit_time);
  }

  JobStats stats;
  stats.job_id = job.id;
  stats.label = job.label;
  stats.pool = job.pool;
  stats.submit_sec = job.submit_time;
  stats.start_sec = job.first_start_time;
  stats.finish_sec = job.result.makespan_sec;
  stats.result = job.result;
  metrics_.jobs.push_back(stats);
  OnJobCompleted(stats);
  if (on_job_done_) on_job_done_(stats);
}

WorkloadMetrics MultiJobEngine::Run() {
  ScheduleFaultPlan();
  if (cfg_.timeseries != nullptr) {
    trace::TimeSeries& ts = *cfg_.timeseries;
    ts.AddGaugeProbe("multijob.active_jobs", [this] {
      return static_cast<double>(active_jobs_);
    });
    ts.AddCumulativeProbe("multijob.jobs_submitted", [this] {
      return static_cast<double>(submitted_);
    });
    ts.AddCumulativeProbe("multijob.jobs_completed", [this] {
      return static_cast<double>(completed_);
    });
    ts.AddCumulativeProbe("multijob.deadline_misses", [this] {
      return static_cast<double>(deadline_misses_);
    });
    if (cfg_.preemption_budget > 0) {
      ts.AddCumulativeProbe("multijob.preemptions", [this] {
        return static_cast<double>(preemptions_);
      });
    }
    // Default SLO rule: jobs with finite deadlines may miss 5% of
    // completions before the budget burns. Deadline-free workloads never
    // fire it (0 misses over any window evaluates to zero burn).
    trace::SloRule rule;
    rule.name = "multijob.deadline_miss_burn";
    rule.kind = trace::SloRule::Kind::kBurnRate;
    rule.bad_series = "multijob.deadline_misses";
    rule.total_series = "multijob.jobs_completed";
    rule.budget = 0.05;
    rule.track = trace::Track{cfg_.trace_pid_base, 0};
    ts.slo().AddRule(rule);
  }
  StartTelemetry();
  ScheduleCheckpointTicks();
  DrainEvents();
  if (halted_) {
    // stop_at_checkpoint froze the queue mid-flight — the SIGKILL
    // equivalent. The snapshot is the authoritative state; whatever is in
    // metrics_ is the partial progress up to the halt.
    return metrics_;
  }
  HD_CHECK_MSG(completed_ == submitted_,
               "event queue drained with jobs still in flight");
  std::sort(metrics_.jobs.begin(), metrics_.jobs.end(),
            [](const JobStats& a, const JobStats& b) {
              return a.job_id < b.job_id;
            });
  for (const JobStats& j : metrics_.jobs) {
    metrics_.makespan_sec = std::max(metrics_.makespan_sec, j.finish_sec);
  }
  const double horizon = metrics_.makespan_sec;
  if (!membership_used_) {
    // Static cluster: the exact pre-elastic expressions (pin-identical).
    metrics_.cpu_utilization = stats::Utilization(
        cpu_busy_sec_,
        static_cast<double>(cfg_.num_slaves) * cfg_.map_slots_per_node,
        horizon);
    metrics_.gpu_utilization = stats::Utilization(
        gpu_busy_sec_,
        static_cast<double>(cfg_.num_slaves) * cfg_.gpus_per_node, horizon);
  } else {
    // Elastic cluster: busy-slot-seconds over the slot-seconds that were
    // actually registered, so a half-capacity interval is not charged for
    // absent trackers.
    const double reg_sec = RegisteredNodeSeconds(horizon);
    metrics_.cpu_utilization = stats::Utilization(
        cpu_busy_sec_, static_cast<double>(cfg_.map_slots_per_node), reg_sec);
    metrics_.gpu_utilization = stats::Utilization(
        gpu_busy_sec_, static_cast<double>(cfg_.gpus_per_node), reg_sec);
  }
  metrics_.gpu_bounces = gpu_bounces_;
  metrics_.nodes_crashed = nodes_crashed_;
  metrics_.nodes_recovered = nodes_recovered_;
  metrics_.nodes_lost = nodes_lost_;
  metrics_.nodes_blacklisted = nodes_blacklisted_;
  metrics_.heartbeats_dropped = heartbeats_dropped_;
  metrics_.nodes_joined = nodes_joined_;
  metrics_.nodes_left = nodes_left_;
  metrics_.leaves_refused = leaves_refused_;
  metrics_.preemptions = preemptions_;
  if (horizon > 0.0 && cfg_.num_slaves > 0) {
    // RegisteredNodeSeconds returns the exact pre-elastic denominator
    // expression for static clusters, so existing pins hold bit-for-bit.
    metrics_.availability =
        1.0 - NodeDownSeconds(horizon) / RegisteredNodeSeconds(horizon);
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->gauge("multijob.makespan_sec").Set(metrics_.makespan_sec);
    cfg_.metrics->gauge("multijob.cpu_utilization")
        .Set(metrics_.cpu_utilization);
    cfg_.metrics->gauge("multijob.gpu_utilization")
        .Set(metrics_.gpu_utilization);
    cfg_.metrics->counter("multijob.gpu_bounces").Set(gpu_bounces_);
    cfg_.metrics->counter("multijob.jobs_submitted").Set(submitted_);
    if (cfg_.faults != nullptr) {
      cfg_.metrics->gauge("multijob.availability").Set(metrics_.availability);
      cfg_.metrics->counter("multijob.task_retries")
          .Set(metrics_.TotalTaskRetries());
      cfg_.metrics->counter("multijob.maps_reexecuted")
          .Set(metrics_.TotalMapsReexecuted());
    }
    if (membership_used_) {
      cfg_.metrics->counter("multijob.nodes_joined").Set(nodes_joined_);
      cfg_.metrics->counter("multijob.nodes_left").Set(nodes_left_);
      cfg_.metrics->counter("multijob.leaves_refused").Set(leaves_refused_);
      if (cfg_.faults == nullptr) {
        cfg_.metrics->gauge("multijob.availability")
            .Set(metrics_.availability);
      }
    }
  }
  return metrics_;
}

// --- Checkpoint / warm restart ---------------------------------------------

std::string MultiJobEngine::CheckpointToText() {
  std::ostringstream os;
  json::Writer w(os);
  w.BeginObject();
  w.Key("schema").String(hadoop::kCheckpointSchema);
  w.Key("seq").Int(checkpoint_seq_);
  w.Key("time").Number(events_.now());
  // Fingerprint of everything the restore target must rebuild identically
  // before overlaying the snapshot.
  w.Key("config").BeginObject();
  w.Key("num_slaves").Int(cfg_.num_slaves);
  w.Key("map_slots").Int(cfg_.map_slots_per_node);
  w.Key("reduce_slots").Int(cfg_.reduce_slots_per_node);
  w.Key("gpus").Int(cfg_.gpus_per_node);
  w.Key("heartbeat_sec").Number(cfg_.heartbeat_sec);
  w.Key("batch_heartbeats").Bool(cfg_.batch_heartbeats);
  w.Key("scheduler").String(scheduler_->name());
  w.EndObject();
  WriteClusterSection(w);
  w.Key("jobs").BeginArray();
  for (const auto& job : jobs_) WriteJobState(w, *job);
  w.EndArray();
  w.Key("multijob").BeginObject();
  w.Key("submitted").Int(submitted_);
  w.Key("completed").Int(completed_);
  w.Key("deadline_misses").Int(deadline_misses_);
  w.Key("preemptions").Int(preemptions_);
  w.Key("pulse_gen").String(ckpt::U64Str(pulse_gen_));
  w.Key("active").BeginArray();
  for (const JobState* j : active_) w.Int(j->id);
  w.EndArray();
  w.Key("pulses").BeginArray();
  for (double t : pulse_next_) w.Number(t);
  w.EndArray();
  w.Key("batch_pulse").Number(batch_next_);
  // Completion order, so the restored metrics_.jobs rebuild matches the
  // original's pre-sort contents.
  w.Key("completed_ids").BeginArray();
  for (const JobStats& s : metrics_.jobs) w.Int(s.job_id);
  w.EndArray();
  w.EndObject();
  WriteExtraSections(w);
  if (cfg_.metrics != nullptr) {
    w.Key("registry").BeginObject();
    w.Key("counters").BeginObject();
    for (const auto& [name, c] : cfg_.metrics->counters()) {
      w.Key(name).Int(c.value());
    }
    w.EndObject();
    w.Key("gauges").BeginObject();
    for (const auto& [name, g] : cfg_.metrics->gauges()) {
      w.Key(name).Number(g.value());
    }
    w.EndObject();
    w.Key("distributions").BeginObject();
    for (const auto& [name, d] : cfg_.metrics->distributions()) {
      w.Key(name).BeginObject();
      w.Key("samples").BeginArray();
      for (double x : d.samples()) w.Number(x);
      w.EndArray();
      w.Key("count").Int(d.count());
      w.Key("sum").Number(d.Sum());
      w.Key("min").Number(d.count() > 0 ? d.Min() : 0.0);
      w.Key("max").Number(d.count() > 0 ? d.Max() : 0.0);
      w.Key("cap").Int(d.reservoir_cap());
      w.Key("rng").String(ckpt::U64Str(d.reservoir_rng()));
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  return os.str();
}

JobSpec MultiJobEngine::MakeRestoredJobSpec(const json::Value& entry) {
  throw CheckpointError(
      "checkpoint job " + std::to_string(ckpt::Int(entry, "id")) + " ('" +
      ckpt::Str(entry, "label") +
      "') was not re-submitted before restore — batch workloads must be "
      "re-submitted by the caller; only stream window jobs are rebuilt "
      "from the snapshot");
}

void MultiJobEngine::RestoreFromFile(const std::string& path) {
  RestoreFromText(ckpt::ReadFile(path));
}

void MultiJobEngine::RestoreFromText(const std::string& text) {
  const json::Value doc = ckpt::ParseCheckpoint(text);
  HD_CHECK_MSG(events_.serviced() == 0 && restored_at_ < 0.0,
               "restore requires a fresh engine (before Run())");
  const int seq = static_cast<int>(ckpt::Int(doc, "seq"));
  const double time = ckpt::Num(doc, "time");
  // Config fingerprint first: a snapshot from a different cluster shape
  // would corrupt state silently, so collect every difference and refuse.
  const json::Value& conf = ckpt::Get(doc, "config");
  std::vector<std::string> mismatches;
  const auto check_int = [&](const char* key, std::int64_t mine) {
    const std::int64_t theirs = ckpt::Int(conf, key);
    if (theirs != mine) {
      mismatches.push_back(std::string(key) + " is " +
                           std::to_string(theirs) + " in the checkpoint but " +
                           std::to_string(mine) + " here");
    }
  };
  check_int("num_slaves", cfg_.num_slaves);
  check_int("map_slots", cfg_.map_slots_per_node);
  check_int("reduce_slots", cfg_.reduce_slots_per_node);
  check_int("gpus", cfg_.gpus_per_node);
  if (ckpt::Num(conf, "heartbeat_sec") != cfg_.heartbeat_sec) {
    mismatches.push_back("heartbeat_sec differs");
  }
  if (ckpt::Bool(conf, "batch_heartbeats") != cfg_.batch_heartbeats) {
    mismatches.push_back("batch_heartbeats differs");
  }
  if (ckpt::Str(conf, "scheduler") != scheduler_->name()) {
    mismatches.push_back("scheduler is '" + ckpt::Str(conf, "scheduler") +
                         "' in the checkpoint but '" + scheduler_->name() +
                         "' here");
  }
  if (!mismatches.empty()) {
    std::string msg = "checkpoint was written by a different configuration (" +
                      std::to_string(mismatches.size()) + " mismatch" +
                      (mismatches.size() == 1 ? "" : "es") + "):";
    for (const std::string& m : mismatches) msg += "\n  - " + m;
    throw CheckpointError(msg);
  }
  // Subclass sections (stream pipeline state) go first: window-job rebuild
  // below needs the pipes overlaid.
  RestoreExtraSections(doc);
  ApplyClusterPre(ckpt::Get(doc, "cluster"));
  const auto& jobs = ckpt::Arr(doc, "jobs");
  for (const json::Value& entry : jobs) {
    const int id = static_cast<int>(ckpt::Int(entry, "id"));
    if (id < 0 || id > submitted_) {
      throw CheckpointError("checkpoint jobs are not in id order (job " +
                            std::to_string(id) + ")");
    }
    if (id == submitted_) {
      // A job the caller cannot re-submit: rebuild its spec from the
      // snapshot (stream window jobs) and submit it here, preserving id
      // order so attempt/event replay stays deterministic.
      JobSpec spec = MakeRestoredJobSpec(entry);
      const int got = Submit(ckpt::Num(entry, "submit"), std::move(spec));
      HD_CHECK(got == id);
    }
    JobState& job = *jobs_[static_cast<std::size_t>(id)];
    ApplyJobState(entry, job);
    if (job.activated) {
      // The activation fired inside the snapshot; the re-submitted event
      // must not push the job into active_ a second time.
      events_.Cancel(activate_events_[static_cast<std::size_t>(id)]);
      activate_events_[static_cast<std::size_t>(id)] = des::EventHandle{};
    }
  }
  if (static_cast<int>(jobs.size()) != submitted_) {
    throw CheckpointError(
        "checkpoint holds " + std::to_string(jobs.size()) + " jobs but " +
        std::to_string(submitted_) +
        " were submitted — submit the original workload before restoring");
  }
  ApplyAttempts(ckpt::Get(doc, "cluster"), [this](int id) -> JobState* {
    if (id < 0 || id >= static_cast<int>(jobs_.size())) return nullptr;
    return jobs_[static_cast<std::size_t>(id)].get();
  });
  const json::Value& mj = ckpt::Get(doc, "multijob");
  if (ckpt::Int(mj, "submitted") != submitted_) {
    throw CheckpointError("checkpoint submitted count differs from the "
                          "re-submitted workload");
  }
  completed_ = static_cast<int>(ckpt::Int(mj, "completed"));
  deadline_misses_ = ckpt::Int(mj, "deadline_misses");
  preemptions_ = ckpt::Int(mj, "preemptions");
  pulse_gen_ = ckpt::U64(mj, "pulse_gen");
  const auto job_at = [&](const json::Value& v, const char* what) {
    const int id = static_cast<int>(v.number);
    if (!v.is_number() || id < 0 || id >= static_cast<int>(jobs_.size())) {
      throw CheckpointError(std::string("corrupt checkpoint: bad job id in ") +
                            what);
    }
    return jobs_[static_cast<std::size_t>(id)].get();
  };
  active_.clear();
  for (const json::Value& v : ckpt::Arr(mj, "active")) {
    JobState* job = job_at(v, "active");
    active_.push_back(job);
    if (job->done) {
      // The map phase finished pre-capture; only the completion timer at
      // the modeled reduce-tail end remains.
      events_.At(job->result.makespan_sec, &MultiJobEngine::CompleteJobEvent,
                 this, des::Payload{des::PackPtr(job), 0});
    }
  }
  active_jobs_ = static_cast<int>(active_.size());
  metrics_.jobs.clear();
  for (const json::Value& v : ckpt::Arr(mj, "completed_ids")) {
    const JobState& job = *job_at(v, "completed_ids");
    JobStats stats;
    stats.job_id = job.id;
    stats.label = job.label;
    stats.pool = job.pool;
    stats.submit_sec = job.submit_time;
    stats.start_sec = job.first_start_time;
    stats.finish_sec = job.result.makespan_sec;
    stats.result = job.result;
    metrics_.jobs.push_back(std::move(stats));
  }
  if (static_cast<int>(metrics_.jobs.size()) != completed_) {
    throw CheckpointError(
        "corrupt checkpoint: completed_ids does not match completed count");
  }
  const auto& pulses = ckpt::Arr(mj, "pulses");
  pulse_next_.assign(pulses.size(), -1.0);
  for (std::size_t i = 0; i < pulses.size(); ++i) {
    pulse_next_[i] = pulses[i].number;
  }
  batch_next_ = ckpt::Num(mj, "batch_pulse");
  if (active_jobs_ > 0) {
    if (cfg_.batch_heartbeats) {
      if (batch_next_ >= 0.0) {
        events_.At(batch_next_, &MultiJobEngine::BatchTickEvent, this,
                   des::Payload{pulse_gen_, 0});
      }
    } else {
      if (pulse_next_.size() != health_.size()) {
        throw CheckpointError(
            "corrupt checkpoint: pulse table does not cover the cluster");
      }
      for (std::size_t n = 0; n < pulse_next_.size(); ++n) {
        if (pulse_next_[n] >= 0.0) {
          events_.At(pulse_next_[n], &MultiJobEngine::PulseTickEvent, this,
                     des::Payload{static_cast<std::uint64_t>(n), pulse_gen_});
        }
      }
    }
  }
  if (cfg_.metrics != nullptr) {
    const json::Value* reg = doc.Find("registry");
    if (reg != nullptr) {
      const json::Value& counters = ckpt::Get(*reg, "counters");
      const json::Value& gauges = ckpt::Get(*reg, "gauges");
      const json::Value& dists = ckpt::Get(*reg, "distributions");
      if (!counters.is_object() || !gauges.is_object() ||
          !dists.is_object()) {
        throw CheckpointError("corrupt checkpoint: registry sections must "
                              "be objects");
      }
      for (const auto& [name, v] : counters.object) {
        cfg_.metrics->counter(name).Set(static_cast<std::int64_t>(v.number));
      }
      for (const auto& [name, v] : gauges.object) {
        cfg_.metrics->gauge(name).Set(v.number);
      }
      for (const auto& [name, v] : dists.object) {
        std::vector<double> samples;
        for (const json::Value& s : ckpt::Arr(v, "samples")) {
          samples.push_back(s.number);
        }
        cfg_.metrics->distribution(name).RestoreState(
            std::move(samples), ckpt::Int(v, "count"), ckpt::Num(v, "sum"),
            ckpt::Num(v, "min"), ckpt::Num(v, "max"), ckpt::Int(v, "cap"),
            ckpt::U64(v, "rng"));
      }
    }
  }
  // Committed-work replay for functional sources: re-run the maps that
  // committed (or are in flight) pre-capture so the source's cached
  // results cover them at FinalOutput time. Timing is discarded — the
  // committed durations/bytes are already in the overlaid state — so this
  // reconstructs answers, never re-does modeled work. Pure no-op for
  // calibrated sources. Jobs already done extracted FinalOutput into
  // result.final_output pre-capture and need nothing.
  for (const auto& jp : jobs_) {
    JobState& job = *jp;
    if (job.done) continue;
    for (std::size_t t = 0; t < job.task_state.size(); ++t) {
      if (job.task_state[t] == hadoop::TaskState::kDone ||
          job.task_state[t] == hadoop::TaskState::kRunning) {
        job.source->MapTask(static_cast<int>(t), false);
      }
    }
  }
  restored_seq_ = seq;
  checkpoint_seq_ = seq;
  restored_at_ = time;
}

}  // namespace hd::multijob
