#include "common/table.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/strings.h"

namespace hd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(std::string v) {
  HD_CHECK_MSG(!rows_.empty(), "Cell() before Row()");
  rows_.back().push_back(std::move(v));
  return *this;
}

Table& Table::Cell(const char* v) { return Cell(std::string(v)); }

Table& Table::Cell(double v, int precision) {
  return Cell(FormatDouble(v, precision));
}

Table& Table::Cell(std::uint64_t v) { return Cell(std::to_string(v)); }

Table& Table::Cell(std::int64_t v) { return Cell(std::to_string(v)); }

Table& Table::Cell(int v) { return Cell(std::to_string(v)); }

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hd
