// Minimal discrete-event simulation core for the cluster engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace hd::hadoop {

// A deterministic event queue: ties in time break by insertion order.
class EventQueue {
 public:
  using Fn = std::function<void()>;

  void At(double time, Fn fn) {
    HD_CHECK_MSG(time >= now_, "event scheduled in the past");
    heap_.push(Event{time, seq_++, std::move(fn)});
  }

  void After(double delay, Fn fn) { At(now_ + delay, std::move(fn)); }

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  // Runs one event; returns false when the queue is empty.
  bool Step() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  // Drains the queue.
  void Run() {
    while (Step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Fn fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace hd::hadoop
