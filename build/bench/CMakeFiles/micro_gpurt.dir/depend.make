# Empty dependencies file for micro_gpurt.
# This may be replaced when dependencies are built.
