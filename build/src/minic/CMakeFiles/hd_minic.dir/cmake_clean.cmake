file(REMOVE_RECURSE
  "CMakeFiles/hd_minic.dir/builtins.cc.o"
  "CMakeFiles/hd_minic.dir/builtins.cc.o.d"
  "CMakeFiles/hd_minic.dir/interp.cc.o"
  "CMakeFiles/hd_minic.dir/interp.cc.o.d"
  "CMakeFiles/hd_minic.dir/lexer.cc.o"
  "CMakeFiles/hd_minic.dir/lexer.cc.o.d"
  "CMakeFiles/hd_minic.dir/parser.cc.o"
  "CMakeFiles/hd_minic.dir/parser.cc.o.d"
  "CMakeFiles/hd_minic.dir/sema.cc.o"
  "CMakeFiles/hd_minic.dir/sema.cc.o.d"
  "libhd_minic.a"
  "libhd_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
