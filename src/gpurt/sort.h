// Intermediate sort (§5.3): indirection-based GPU merge sort.
//
// The paper modifies the Satish/Harris/Garland merge sort to sort an
// indirection array instead of the variable-length KV pairs themselves,
// avoiding large data movement in device memory. Functionally we sort
// indices with a stable bytewise key comparison; the cost model charges
// log2(n) merge passes, each reading every considered slot's key through
// the indirection array and writing back a 4-byte index.
#pragma once

#include <cstdint>
#include <vector>

#include "gpurt/kv.h"
#include "gpusim/kernel.h"

namespace hd::gpurt {

// Stable, bytewise-key sort of `pairs` in place (the functional result).
void SortPairsByKey(std::vector<KvPair>* pairs);

// Charges the merge-sort kernel for sorting `sort_elements` pairs with keys
// of `key_slot_bytes`. `vectorized` selects char4 key loads.
//
// When the KV pairs were aggregated first (`compacted` = true) the merge
// passes stream densely packed slots. Without compaction the pairs sit
// scattered across the per-thread portions of the global KV store: the
// merge needs `extra_global_passes` more levels (the address space is
// log2(whitespace-spread) times wider) and its key loads are random
// rather than streaming — the sort inefficiency Fig. 7e quantifies.
void ChargeSortKernel(gpusim::KernelSim& kernel, std::int64_t sort_elements,
                      int key_slot_bytes, bool vectorized,
                      bool compacted = true, int extra_global_passes = 0);

}  // namespace hd::gpurt
