#include "hadoop/cluster_core.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hd::hadoop {

void ClusterConfig::Validate() const {
  // Collect every violation and report them in one CheckError (the
  // translator::Translate convention): a misconfigured sweep surfaces all
  // of its problems in a single run.
  std::vector<std::string> violations;
  auto require = [&violations](bool ok, std::string msg) {
    if (!ok) violations.push_back(std::move(msg));
  };
  require(num_slaves > 0, "cluster needs at least one slave");
  require(map_slots_per_node > 0,
          "each slave needs at least one CPU map slot");
  require(reduce_slots_per_node >= 0,
          "reduce_slots_per_node must be non-negative");
  require(gpus_per_node >= 0, "gpus_per_node must be non-negative");
  require(heartbeat_sec > 0.0, "heartbeat_sec must be positive");
  require(network_bytes_per_sec > 0.0,
          "network_bytes_per_sec must be positive");
  require(reduce_slowstart >= 0.0 && reduce_slowstart <= 1.0,
          "reduce_slowstart must be a fraction in [0, 1]");
  require(trace_pid_base >= 0, "trace_pid_base must be non-negative");
  require(heartbeat_expiry_sec > heartbeat_sec,
          "heartbeat_expiry_sec must exceed the heartbeat interval or "
          "every tracker expires between its own heartbeats");
  require(max_task_attempts >= 1,
          "max_task_attempts must allow at least one attempt");
  require(max_gpu_attempts >= 1,
          "max_gpu_attempts must allow at least one GPU attempt");
  require(blacklist_task_failures >= 1,
          "blacklist_task_failures must be at least 1");
  require(retry_backoff_sec >= 0.0, "retry_backoff_sec must be non-negative");
  require(speculation_slowdown > 1.0,
          "speculation_slowdown must exceed 1 (a straggler is slower "
          "than the mean, not faster)");
  require(des_backend == "calendar" || des_backend == "heap",
          "des_backend '" + des_backend +
              "' unknown (valid: " + des::kBackendNames + ")");
  require(checkpoint_interval_sec >= 0.0,
          "checkpoint_interval_sec must be non-negative (0 = off)");
  require(stop_at_checkpoint >= 0, "stop_at_checkpoint must be non-negative");
  require(stop_at_checkpoint == 0 || checkpoint_interval_sec > 0.0,
          "stop_at_checkpoint requires a positive checkpoint_interval_sec "
          "(there is no checkpoint to stop at otherwise)");
  require(preemption_budget >= 0, "preemption_budget must be non-negative");
  // Upper bound only when num_slaves itself is valid — an invalid slave
  // count already has its own violation, no need to cascade.
  require(min_tracker_floor >= 0 &&
              (num_slaves <= 0 || min_tracker_floor <= num_slaves),
          "min_tracker_floor must lie in [0, num_slaves]");
  if (!node_speed_factors.empty()) {
    require(static_cast<int>(node_speed_factors.size()) == num_slaves,
            "node_speed_factors must have one entry per slave");
    for (double f : node_speed_factors) {
      if (!(f > 0.0)) {
        require(false, "node speed factors must be positive");
        break;
      }
    }
  }
  if (violations.empty()) return;
  std::string msg = "invalid ClusterConfig (" +
                    std::to_string(violations.size()) + " violation" +
                    (violations.size() == 1 ? "" : "s") + "):";
  for (const std::string& v : violations) msg += "\n  - " + v;
  HD_CHECK_MSG(false, msg);
}

void ValidateClusterConfig(const ClusterConfig& cfg) { cfg.Validate(); }

namespace {
// Validates before ClusterCore's EventQueue member is constructed from
// cfg_.des_backend, so an unknown backend is reported alongside every
// other violation instead of throwing from the queue factory first.
ClusterConfig Validated(ClusterConfig cfg) {
  cfg.Validate();
  return cfg;
}
}  // namespace

ClusterCore::ClusterCore(ClusterConfig cfg)
    : cfg_(Validated(std::move(cfg))), events_(cfg_.des_backend) {
  nodes_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  for (auto& n : nodes_) {
    n.free_cpu = cfg_.map_slots_per_node;
    n.free_gpu = cfg_.gpus_per_node;
  }
  health_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  lost_tasks_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  recover_events_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  if (cfg_.sink != nullptr) {
    cfg_.sink->NameProcess(cfg_.trace_pid_base, "jobtracker");
    free_cpu_lanes_.resize(nodes_.size());
    free_gpu_lanes_.resize(nodes_.size());
    for (int node = 0; node < cfg_.num_slaves; ++node) {
      cfg_.sink->NameProcess(cfg_.trace_pid_base + node + 1,
                             "node" + std::to_string(node));
      cfg_.sink->NameThread(NodeTrack(node, 0), "tasktracker");
      auto& cpu = free_cpu_lanes_[static_cast<std::size_t>(node)];
      auto& gpu = free_gpu_lanes_[static_cast<std::size_t>(node)];
      // Stored highest-first so acquiring from the back hands out the
      // lowest free tid (tasks fill rows top-down in the viewer).
      for (int s = cfg_.map_slots_per_node; s >= 1; --s) {
        cfg_.sink->NameThread(NodeTrack(node, s),
                              "cpu" + std::to_string(s - 1));
        cpu.push_back(s);
      }
      for (int g = cfg_.gpus_per_node; g >= 1; --g) {
        const int tid = cfg_.map_slots_per_node + g;
        cfg_.sink->NameThread(NodeTrack(node, tid),
                              "gpu" + std::to_string(g - 1));
        gpu.push_back(tid);
      }
    }
  }
}

void ClusterCore::EmitHeartbeat(int node_id) {
  if (cfg_.sink == nullptr) return;
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  cfg_.sink->Instant("hadoop", "heartbeat", NodeTrack(node_id, 0),
                     events_.now(),
                     {trace::Arg::Int("free_cpu", n.free_cpu),
                      trace::Arg::Int("free_gpu", n.free_gpu)});
}

void ClusterCore::InitJob(JobState& job) {
  HD_CHECK(job.source != nullptr);
  if (job.fs != nullptr) {
    HD_CHECK_MSG(job.fs->NumSplits(job.input_path) ==
                     job.source->num_map_tasks(),
                 "input file split count does not match the task source");
  }
  job.remaining_maps = job.source->num_map_tasks();
  job.pending.resize(static_cast<std::size_t>(job.remaining_maps));
  for (int i = 0; i < job.remaining_maps; ++i) job.pending[i] = i;
  // Sized to the full tracker array, not num_slaves: trackers joined at
  // runtime index past the initial set.
  job.node_stats.assign(nodes_.size(), {});
  const auto n = static_cast<std::size_t>(job.remaining_maps);
  job.task_state.assign(n, TaskState::kPending);
  job.attempts_started.assign(n, 0);
  job.attempts_failed.assign(n, 0);
  job.gpu_faults.assign(n, 0);
  job.cpu_only.assign(n, 0);
  job.committed_node.assign(n, -1);
  job.committed_bytes.assign(n, 0);
  job.retry_at.assign(n, -1.0);
}

sched::NodeSched ClusterCore::SchedView(const JobState& job,
                                        int node_id) const {
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  const bool gpu_blind = job.policy == sched::Policy::kCpuOnly;
  sched::NodeSched v;
  v.free_cpu_slots = n.free_cpu;
  v.free_gpu_slots = gpu_blind ? 0 : n.free_gpu;
  v.num_gpus = gpu_blind ? 0 : cfg_.gpus_per_node;
  v.ave_speedup =
      job.node_stats[static_cast<std::size_t>(node_id)].AveSpeedup();
  return v;
}

int ClusterCore::HeartbeatCap(const JobState& job, int node_id) const {
  return sched::MaxTasksThisHeartbeat(
      job.policy, SchedView(job, node_id),
      static_cast<int>(job.pending.size()), job.max_speedup, cfg_.num_slaves);
}

bool ClusterCore::NodeHasUsableSlot(const JobState& job, int node_id) const {
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  if (n.free_cpu > 0) return true;
  return job.policy != sched::Policy::kCpuOnly && n.free_gpu > 0;
}

bool ClusterCore::NodeSchedulable(int node_id) const {
  const NodeHealth& h = health_[static_cast<std::size_t>(node_id)];
  return h.member && !h.departed && !h.draining && h.alive && !h.blacklisted;
}

bool ClusterCore::HeartbeatDelivered(int node_id) {
  NodeHealth& h = health_[static_cast<std::size_t>(node_id)];
  // A tracker that never joined or already left does not heartbeat.
  if (!h.member || h.departed) return false;
  if (cfg_.faults == nullptr) return true;
  if (!h.alive) return false;
  ++h.heartbeat_seq;
  if (cfg_.faults->DropHeartbeat(node_id, h.heartbeat_seq)) {
    ++heartbeats_dropped_;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("fault.heartbeats_dropped").Add(1);
    }
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant("fault", "heartbeat_drop", NodeTrack(node_id, 0),
                         events_.now(),
                         {trace::Arg::Int("seq", h.heartbeat_seq)});
    }
    return false;
  }
  h.last_heartbeat_sec = events_.now();
  if (h.lost) {
    // A tracker the JobTracker gave up on is heartbeating again: it
    // re-registers as a fresh tracker with a clean failure record
    // (whatever it was running was already re-enqueued at expiry).
    h.lost = false;
    h.blacklisted = false;
    h.failed_attempts = 0;
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant("fault", "node_reregister", NodeTrack(node_id, 0),
                         events_.now(), {});
    }
  }
  CheckExpiry();
  return true;
}

void ClusterCore::CrashEvent(void* ctx, const des::Payload& p) {
  auto* core = static_cast<ClusterCore*>(ctx);
  core->CrashNode(fault::UnpackNodeCrash(p.u0, p.u1, core->events_.now()));
}

void ClusterCore::RecoverEvent(void* ctx, const des::Payload& p) {
  static_cast<ClusterCore*>(ctx)->RecoverNode(static_cast<int>(p.u0));
}

void ClusterCore::AttemptDoneEvent(void* ctx, const des::Payload& p) {
  static_cast<ClusterCore*>(ctx)->OnAttemptDone(
      static_cast<std::int64_t>(p.u0));
}

void ClusterCore::AttemptFailedEvent(void* ctx, const des::Payload& p) {
  static_cast<ClusterCore*>(ctx)->OnAttemptFailed(
      static_cast<std::int64_t>(p.u0));
}

void ClusterCore::RetryTimerEvent(void* ctx, const des::Payload& p) {
  auto* core = static_cast<ClusterCore*>(ctx);
  auto* job = des::UnpackPtr<JobState>(p.u0);
  const int task = static_cast<int>(p.u1);
  if (job->task_state[static_cast<std::size_t>(task)] ==
      TaskState::kRetryWait) {
    core->RequeueTask(*job, task);
  }
}

void ClusterCore::SampleEvent(void* ctx, const des::Payload& p) {
  auto* core = static_cast<ClusterCore*>(ctx);
  --core->aux_pending_;
  core->SampleTick(static_cast<std::int64_t>(p.u0));
}

void ClusterCore::JoinEvent(void* ctx, const des::Payload& p) {
  auto* core = static_cast<ClusterCore*>(ctx);
  MembershipOp& op = core->membership_plan_[static_cast<std::size_t>(p.u0)];
  op.fired = true;
  core->AdmitNode(op.node);
}

void ClusterCore::LeaveEvent(void* ctx, const des::Payload& p) {
  auto* core = static_cast<ClusterCore*>(ctx);
  MembershipOp& op = core->membership_plan_[static_cast<std::size_t>(p.u0)];
  op.fired = true;
  core->LeaveNow(op.node, op.drain);
}

void ClusterCore::CheckpointEvent(void* ctx, const des::Payload& p) {
  static_cast<ClusterCore*>(ctx)->CheckpointTick(static_cast<int>(p.u0));
}

// --- Runtime cluster resize -----------------------------------------------

void ClusterCore::GrowArraysTo(int n) {
  const auto count = static_cast<std::size_t>(n);
  if (nodes_.size() >= count) return;
  while (nodes_.size() < count) {
    nodes_.emplace_back();  // zero slots until admitted
    NodeHealth h;
    h.member = false;  // not registered until the join event fires
    h.alive = false;
    health_.push_back(h);
  }
  lost_tasks_.resize(count);
  recover_events_.resize(count);
  if (cfg_.sink != nullptr) {
    free_cpu_lanes_.resize(count);
    free_gpu_lanes_.resize(count);
  }
}

int ClusterCore::ScheduleJoin(double when) {
  HD_CHECK_MSG(when >= events_.now(), "cannot schedule a join in the past");
  const int node = static_cast<int>(nodes_.size());
  ++joins_scheduled_;
  membership_used_ = true;
  GrowArraysTo(node + 1);
  MembershipOp op;
  op.kind = MembershipOp::Kind::kJoin;
  op.when = when;
  op.node = node;
  const auto idx = static_cast<std::uint64_t>(membership_plan_.size());
  membership_plan_.push_back(op);
  membership_plan_.back().event =
      events_.At(when, &ClusterCore::JoinEvent, this, des::Payload{idx, 0});
  return node;
}

void ClusterCore::ScheduleLeave(double when, int node, bool drain) {
  HD_CHECK_MSG(when >= events_.now(), "cannot schedule a leave in the past");
  HD_CHECK_MSG(node >= 0 && node < static_cast<int>(nodes_.size()),
               "ScheduleLeave: unknown tracker id");
  membership_used_ = true;
  MembershipOp op;
  op.kind = MembershipOp::Kind::kLeave;
  op.when = when;
  op.node = node;
  op.drain = drain;
  const auto idx = static_cast<std::uint64_t>(membership_plan_.size());
  membership_plan_.push_back(op);
  membership_plan_.back().event =
      events_.At(when, &ClusterCore::LeaveEvent, this, des::Payload{idx, 0});
}

int ClusterCore::registered_nodes() const {
  int n = 0;
  for (const NodeHealth& h : health_) {
    if (h.member && !h.departed) ++n;
  }
  return n;
}

void ClusterCore::AdmitNode(int node_id) {
  const auto i = static_cast<std::size_t>(node_id);
  NodeHealth& h = health_[i];
  HD_CHECK(!h.member && !h.departed);
  h.member = true;
  h.alive = true;
  h.lost = false;
  h.joined_sec = events_.now();
  h.last_heartbeat_sec = events_.now();
  nodes_[i].free_cpu = cfg_.map_slots_per_node;
  nodes_[i].free_gpu = cfg_.gpus_per_node;
  ++nodes_joined_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("cluster.nodes_joined").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->NameProcess(NodeTrack(node_id, 0).pid,
                           "node" + std::to_string(node_id));
    cfg_.sink->NameThread(NodeTrack(node_id, 0), "tasktracker");
    auto& cpu = free_cpu_lanes_[i];
    auto& gpu = free_gpu_lanes_[i];
    cpu.clear();
    gpu.clear();
    for (int s = cfg_.map_slots_per_node; s >= 1; --s) {
      cfg_.sink->NameThread(NodeTrack(node_id, s),
                            "cpu" + std::to_string(s - 1));
      cpu.push_back(s);
    }
    for (int g = cfg_.gpus_per_node; g >= 1; --g) {
      const int tid = cfg_.map_slots_per_node + g;
      cfg_.sink->NameThread(NodeTrack(node_id, tid),
                            "gpu" + std::to_string(g - 1));
      gpu.push_back(tid);
    }
    cfg_.sink->Instant("membership", "node_join", NodeTrack(node_id, 0),
                       events_.now(), {trace::Arg::Int("node", node_id)});
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " join node=" << node_id << "\n";
  }
  OnClusterGrown(node_id);
}

void ClusterCore::LeaveNow(int node_id, bool drain) {
  const auto i = static_cast<std::size_t>(node_id);
  NodeHealth& h = health_[i];
  if (!h.member || h.departed) return;  // left (or never joined) already
  if (registered_nodes() - 1 < cfg_.min_tracker_floor) {
    ++leaves_refused_;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("cluster.leaves_refused").Add(1);
    }
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant(
          "membership", "leave_refused", NodeTrack(node_id, 0), events_.now(),
          {trace::Arg::Int("node", node_id),
           trace::Arg::Int("floor", cfg_.min_tracker_floor)});
    }
    return;
  }
  if (drain) {
    h.draining = true;
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant("membership", "drain_start", NodeTrack(node_id, 0),
                         events_.now(), {trace::Arg::Int("node", node_id)});
    }
    bool busy = false;
    for (const auto& [id, at] : running_) {
      if (at.node == node_id) {
        busy = true;
        break;
      }
    }
    if (!busy) DepartNode(node_id);
    return;
  }
  // Hard leave: the tracker's running attempts die with it and its
  // committed map outputs become unreachable — exactly the node-loss
  // recovery path, minus the expiry wait.
  KillAttemptsOn(node_id);
  RequeueLostTasks(node_id);
  ReexecuteCommittedMaps(node_id);
  DepartNode(node_id);
}

void ClusterCore::DepartNode(int node_id) {
  const auto i = static_cast<std::size_t>(node_id);
  NodeHealth& h = health_[i];
  if (h.departed) return;
  h.departed = true;
  h.draining = false;
  h.departed_sec = events_.now();
  // Close an open outage: departed trackers stop accruing downtime (they
  // also stop counting toward the availability denominator).
  if (!h.alive) outages_.emplace_back(h.down_since_sec, events_.now());
  h.alive = false;
  events_.Cancel(recover_events_[i]);
  recover_events_[i] = des::EventHandle{};
  h.recover_at_sec = -1.0;
  ++nodes_left_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("cluster.nodes_left").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("membership", "node_leave", NodeTrack(node_id, 0),
                       events_.now(), {trace::Arg::Int("node", node_id)});
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " leave node=" << node_id << "\n";
  }
}

void ClusterCore::StartTelemetry() {
  trace::TimeSeries* ts = cfg_.timeseries;
  if (ts == nullptr) return;
  const double cpu_slots =
      static_cast<double>(cfg_.num_slaves) * cfg_.map_slots_per_node;
  if (cpu_slots > 0.0) {
    ts->AddRateProbe(
        "cluster.cpu_util", [this] { return cpu_busy_sec_; },
        1.0 / cpu_slots);
  }
  const double gpu_slots =
      static_cast<double>(cfg_.num_slaves) * cfg_.gpus_per_node;
  if (gpu_slots > 0.0) {
    ts->AddRateProbe(
        "cluster.gpu_util", [this] { return gpu_busy_sec_; },
        1.0 / gpu_slots);
  }
  ts->AddGaugeProbe("cluster.running_attempts", [this] {
    return static_cast<double>(running_.size());
  });
  ts->AddGaugeProbe("cluster.live_trackers", [this] {
    double n = 0.0;
    for (const NodeHealth& h : health_) {
      n += (h.member && !h.departed && h.alive) ? 1.0 : 0.0;
    }
    return n;
  });
  // Availability over modeled time: the fraction of registered trackers
  // currently up (fault::FaultInjector crash plans carve this below 1.0);
  // the run-total availability gauge integrates the same signal.
  ts->AddGaugeProbe("cluster.available_frac", [this] {
    double up = 0.0;
    double reg = 0.0;
    for (const NodeHealth& h : health_) {
      if (!h.member || h.departed) continue;
      reg += 1.0;
      up += h.alive ? 1.0 : 0.0;
    }
    return reg > 0.0 ? up / reg : 1.0;
  });
  ts->AddRateProbe("des.events_per_sec", [this] {
    return static_cast<double>(events_.serviced());
  });
  if (membership_used_ && cfg_.min_tracker_floor > 0) {
    // Elastic runs alert when churn (or a refused plan) leaves fewer live
    // trackers than the configured floor. Registered only under
    // membership so static runs' alert streams are untouched.
    trace::SloRule rule;
    rule.name = "cluster.tracker_floor";
    rule.kind = trace::SloRule::Kind::kBelow;
    rule.series = "cluster.live_trackers";
    rule.threshold = static_cast<double>(cfg_.min_tracker_floor);
    rule.track = trace::Track{cfg_.trace_pid_base, 0};
    ts->slo().AddRule(rule);
  }
  if (restored_at_ >= 0.0) {
    // Warm restart: resume the tick chain after the restore point instead
    // of re-sampling from t=0 (history before the restore is not part of
    // the checkpoint — the series is observational, see DESIGN.md).
    const auto k0 = static_cast<std::int64_t>(restored_at_ /
                                              ts->sample_interval_sec());
    ++aux_pending_;
    events_.At(static_cast<double>(k0 + 1) * ts->sample_interval_sec(),
               &ClusterCore::SampleEvent, this,
               des::Payload{static_cast<std::uint64_t>(k0 + 1), 0});
  } else {
    SampleTick(0);
  }
}

void ClusterCore::SampleTick(std::int64_t k) {
  trace::TimeSeries* ts = cfg_.timeseries;
  if (k > 0) ts->Sample(events_.now(), cfg_.metrics, cfg_.sink);
  // Re-arm while the simulation still has events of its own: when the
  // queue holds nothing but auxiliary chains (this sampler, checkpoint
  // ticks), the run is over and the queue must drain. Tick times are
  // k * interval — multiplication, not accumulation, so a million ticks
  // carry no floating-point drift.
  if (k == 0 ||
      events_.pending() > static_cast<std::size_t>(aux_pending_)) {
    ++aux_pending_;
    events_.At(static_cast<double>(k + 1) * ts->sample_interval_sec(),
               &ClusterCore::SampleEvent, this,
               des::Payload{static_cast<std::uint64_t>(k + 1), 0});
  }
}

void ClusterCore::ScheduleFaultPlan() {
  if (cfg_.faults == nullptr) return;
  // The crash plan covers the initial trackers only; runtime-joined
  // trackers are outside the injector's plan. On a warm restart, crashes
  // at or before the restore point already happened — their outage state
  // (and any pending recovery) came back with the checkpoint.
  for (const fault::NodeCrash& crash : cfg_.faults->CrashPlan(cfg_.num_slaves)) {
    if (restored_at_ >= 0.0 && crash.at_sec <= restored_at_) continue;
    const auto [u0, u1] = fault::PackNodeCrash(crash);
    events_.At(crash.at_sec, &ClusterCore::CrashEvent, this,
               des::Payload{u0, u1});
  }
}

void ClusterCore::CrashNode(const fault::NodeCrash& crash) {
  NodeHealth& h = health_[static_cast<std::size_t>(crash.node)];
  if (!h.member || h.departed) return;  // left before the planned crash
  if (!h.alive) return;  // CrashPlan leaves restart gaps; defensive anyway
  h.alive = false;
  h.down_since_sec = events_.now();
  ++nodes_crashed_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("fault.node_crashes").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("fault", "node_crash", NodeTrack(crash.node, 0),
                       events_.now(),
                       {trace::Arg::Int("permanent", crash.permanent ? 1 : 0)});
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " crash node=" << crash.node
                << (crash.permanent ? " permanent" : " transient") << "\n";
  }
  // The tracker process dies with its slots' contents: every running
  // attempt is gone. The JobTracker only learns of it at heartbeat expiry
  // (DeclareLost), which re-enqueues the work.
  KillAttemptsOn(crash.node);
  if (h.departed) return;  // a draining tracker departed as its slots freed
  if (!crash.permanent) {
    h.recover_at_sec = events_.now() + crash.down_sec;
    recover_events_[static_cast<std::size_t>(crash.node)] = events_.After(
        crash.down_sec, &ClusterCore::RecoverEvent, this,
        des::Payload{static_cast<std::uint64_t>(crash.node), 0});
  }
}

void ClusterCore::RecoverNode(int node_id) {
  NodeHealth& h = health_[static_cast<std::size_t>(node_id)];
  if (h.departed) return;  // defensive: departure cancels the event
  HD_CHECK(!h.alive);
  recover_events_[static_cast<std::size_t>(node_id)] = des::EventHandle{};
  h.recover_at_sec = -1.0;
  outages_.emplace_back(h.down_since_sec, events_.now());
  h.alive = true;
  h.lost = false;
  h.blacklisted = false;
  h.failed_attempts = 0;
  h.last_heartbeat_sec = events_.now();
  ++nodes_recovered_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("fault.node_recoveries").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("fault", "node_recover", NodeTrack(node_id, 0),
                       events_.now(), {});
  }
  // The restarted tracker re-registers with empty slots. If the outage was
  // shorter than the expiry window the JobTracker never declared it lost,
  // so the attempts that died in the crash were still "running" on the
  // books — reschedule them now, exactly as a re-registration does in
  // Hadoop. (After an expiry, DeclareLost already drained this list.)
  RequeueLostTasks(node_id);
  OnNodeRecovered(node_id);
}

void ClusterCore::CheckExpiry() {
  for (int node = 0; node < static_cast<int>(health_.size()); ++node) {
    NodeHealth& h = health_[static_cast<std::size_t>(node)];
    if (!h.member || h.departed) continue;
    if (h.lost) continue;
    if (events_.now() - h.last_heartbeat_sec > cfg_.heartbeat_expiry_sec) {
      DeclareLost(node);
    }
  }
}

void ClusterCore::DeclareLost(int node_id) {
  NodeHealth& h = health_[static_cast<std::size_t>(node_id)];
  h.lost = true;
  ++nodes_lost_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.nodes_expired").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("fault", "node_expired", NodeTrack(node_id, 0),
                       events_.now(), {});
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " expired node=" << node_id
                << "\n";
  }
  // If the tracker is actually alive (its heartbeats were dropped), the
  // JobTracker still kills its attempts — same as real Hadoop, where a
  // tracker declared lost has its tasks rescheduled even if it later
  // turns out to be healthy.
  KillAttemptsOn(node_id);
  // Re-enqueue the in-flight work that died with the tracker.
  RequeueLostTasks(node_id);
  ReexecuteCommittedMaps(node_id);
}

void ClusterCore::ReexecuteCommittedMaps(int node_id) {
  // Map outputs committed on the dead (or hard-departed) tracker lived on
  // its local disk: jobs whose reducers still need them must re-execute
  // those maps.
  VisitActiveJobs([this, node_id](JobState& job) {
    if (job.done || job.source->num_reducers() == 0) return;
    const int total = job.source->num_map_tasks();
    for (int task = 0; task < total; ++task) {
      const auto t = static_cast<std::size_t>(task);
      if (job.committed_node[t] != node_id) continue;
      job.committed_node[t] = -1;
      job.result.total_map_output_bytes -= job.committed_bytes[t];
      job.committed_bytes[t] = 0;
      job.task_state[t] = TaskState::kPending;
      job.pending.push_back(task);
      ++job.remaining_maps;
      --job.maps_done;
      ++job.result.maps_reexecuted;
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("hadoop.maps_reexecuted").Add(1);
      }
      if (cfg_.sink != nullptr) {
        cfg_.sink->Instant("fault", "map_reexecute", JobTrack(job),
                           events_.now(),
                           {trace::Arg::Int("job", job.id),
                            trace::Arg::Int("task", task),
                            trace::Arg::Int("lost_node", node_id)});
      }
    }
  });
}

void ClusterCore::RequeueLostTasks(int node_id) {
  auto& lost = lost_tasks_[static_cast<std::size_t>(node_id)];
  for (auto& [job, task] : lost) {
    if (job->done) continue;
    const auto t = static_cast<std::size_t>(task);
    if (job->task_state[t] != TaskState::kRunning) continue;
    if (HasRunningAttempt(*job, task)) continue;  // speculative twin lives
    RequeueTask(*job, task);
  }
  lost.clear();
}

bool ClusterCore::HasRunningAttempt(const JobState& job, int task) const {
  for (const auto& [id, at] : running_) {
    if (at.job == &job && at.task == task) return true;
  }
  return false;
}

void ClusterCore::KillAttemptsOn(int node_id) {
  std::vector<std::int64_t> ids;
  for (const auto& [id, at] : running_) {
    if (at.node == node_id) ids.push_back(id);
  }
  for (std::int64_t id : ids) {
    const Attempt& at = running_.at(id);
    lost_tasks_[static_cast<std::size_t>(node_id)].emplace_back(at.job,
                                                                at.task);
    KillAttempt(id, "node_lost");
  }
}

void ClusterCore::KillAttempt(std::int64_t id, const char* why) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  const Attempt at = it->second;
  running_.erase(it);
  events_.Cancel(at.outcome_event);
  JobState& job = *at.job;
  const double elapsed = events_.now() - at.start_sec;
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", at.task),
                        trace::Arg::Str("label", job.label),
                        trace::Arg::Float("duration_sec", elapsed),
                        trace::Arg::Int("killed", 1),
                        trace::Arg::Str("reason", why)};
    if (at.index > 0) args.push_back(trace::Arg::Int("attempt", at.index));
    if (at.speculative) args.push_back(trace::Arg::Int("speculative", 1));
    if (at.restored) args.push_back(trace::Arg::Int("restored", 1));
    cfg_.sink->Span("task", at.on_gpu ? "gpu_map" : "cpu_map",
                    NodeTrack(at.node, at.lane), at.start_sec, elapsed, args);
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " kill task=" << at.task << " node=" << at.node << " ("
                << why << ")\n";
  }
  if (at.on_gpu) {
    gpu_busy_sec_ += elapsed;
  } else {
    cpu_busy_sec_ += elapsed;
  }
  FreeSlot(at.node, at.on_gpu, at.lane);
  --job.running_tasks;
  ++job.result.killed_attempts;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.killed_attempts").Add(1);
  }
}

bool ClusterCore::IsLocal(const JobState& job, int node_id, int task) const {
  if (job.fs == nullptr) return true;
  return job.fs->Split(job.input_path, task).IsLocalTo(node_id);
}

std::vector<int> ClusterCore::PickTasks(JobState& job, int node_id,
                                        int max_tasks) {
  std::vector<int> picked;
  if (max_tasks <= 0) return picked;
  // Pass 1: data-local splits.
  for (auto it = job.pending.begin();
       it != job.pending.end() &&
       static_cast<int>(picked.size()) < max_tasks;) {
    if (IsLocal(job, node_id, *it)) {
      picked.push_back(*it);
      it = job.pending.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: any split.
  while (static_cast<int>(picked.size()) < max_tasks &&
         !job.pending.empty()) {
    picked.push_back(job.pending.front());
    job.pending.erase(job.pending.begin());
  }
  for (int task : picked) {
    job.task_state[static_cast<std::size_t>(task)] = TaskState::kRunning;
  }
  return picked;
}

void ClusterCore::PlaceTask(JobState& job, int node_id, int task,
                            double maps_remaining_per_node) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  const sched::NodeSched view = SchedView(job, node_id);
  const bool demoted = job.cpu_only[static_cast<std::size_t>(task)] != 0;
  const bool want_gpu =
      !demoted && sched::PlaceOnGpu(job.policy, view, maps_remaining_per_node);
  if (cfg_.sink != nullptr && !demoted &&
      job.policy == sched::Policy::kTail &&
      sched::TailForces(view, maps_remaining_per_node)) {
    // Algorithm 2's forced-GPU decision, with the inputs that produced it.
    const trace::Args args = {
        trace::Arg::Int("job", job.id),
        trace::Arg::Int("task", task),
        trace::Arg::Float("maps_remaining_per_node", maps_remaining_per_node),
        trace::Arg::Float("ave_speedup", view.ave_speedup),
        trace::Arg::Int("num_gpus", view.num_gpus),
        trace::Arg::Int("free_cpu", view.free_cpu_slots),
        trace::Arg::Int("free_gpu", view.free_gpu_slots)};
    if (!job.tail_onset_traced) {
      job.tail_onset_traced = true;
      cfg_.sink->Instant("sched", "tail_onset", JobTrack(job), events_.now(),
                         args);
    }
    cfg_.sink->Instant("sched", "forced_gpu", NodeTrack(node_id, 0),
                       events_.now(), args);
  }
  if (want_gpu) {
    if (node.free_gpu > 0) {
      StartMap(job, node_id, task, /*on_gpu=*/true);
    } else {
      // Tail forcing with every local GPU busy: hand the task back so the
      // next TaskTracker with an idle GPU picks it up, rather than queueing
      // behind this node's GPU.
      ++gpu_bounces_;
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("hadoop.gpu_bounces").Add(1);
      }
      if (cfg_.sink != nullptr) {
        cfg_.sink->Instant("sched", "gpu_bounce", NodeTrack(node_id, 0),
                           events_.now(),
                           {trace::Arg::Int("job", job.id),
                            trace::Arg::Int("task", task)});
      }
      job.task_state[static_cast<std::size_t>(task)] = TaskState::kPending;
      job.pending.insert(job.pending.begin(), task);
    }
    return;
  }
  if (node.free_cpu > 0) {
    StartMap(job, node_id, task, /*on_gpu=*/false);
  } else if (!demoted && job.policy != sched::Policy::kCpuOnly &&
             node.free_gpu > 0) {
    StartMap(job, node_id, task, /*on_gpu=*/true);
  } else {
    // No capacity after all (tail cap raced with completions): put back.
    job.task_state[static_cast<std::size_t>(task)] = TaskState::kPending;
    job.pending.insert(job.pending.begin(), task);
  }
}

void ClusterCore::HandleGpuLaunchFailure(JobState& job, int node_id, int task,
                                         bool speculative, bool injected_oom) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  // §5.1: the failure is reported to the TaskTracker, the GPU driver is
  // revived, and the task is rescheduled — here directly onto a CPU slot
  // when one is free.
  ++job.result.gpu_failures;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.gpu_failures").Add(1);
    if (injected_oom) cfg_.metrics->counter("fault.gpu_oom").Add(1);
  }
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", task)};
    if (injected_oom) args.push_back(trace::Arg::Int("oom", 1));
    cfg_.sink->Instant("hadoop", "gpu_failure", NodeTrack(node_id, 0),
                       events_.now(), args);
  }
  const auto t = static_cast<std::size_t>(task);
  if (++job.gpu_faults[t] >= cfg_.max_gpu_attempts && job.cpu_only[t] == 0) {
    // The GPU-failure rescheduling loop is bounded: after max_gpu_attempts
    // faults the task is pinned to CPU slots, even under tail forcing.
    job.cpu_only[t] = 1;
    ++job.result.gpu_demotions;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("hadoop.gpu_demotions").Add(1);
    }
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant("hadoop", "gpu_demotion", NodeTrack(node_id, 0),
                         events_.now(),
                         {trace::Arg::Int("job", job.id),
                          trace::Arg::Int("task", task),
                          trace::Arg::Int("gpu_faults", job.gpu_faults[t])});
    }
  }
  if (speculative) return;  // the original attempt is still running
  if (node.free_cpu > 0) {
    StartMap(job, node_id, task, /*on_gpu=*/false);
  } else {
    job.task_state[t] = TaskState::kPending;
    job.pending.insert(job.pending.begin(), task);
  }
}

void ClusterCore::StartMap(JobState& job, int node_id, int task, bool on_gpu,
                           bool speculative) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  const auto t = static_cast<std::size_t>(task);
  const int attempt_index = job.attempts_started[t]++;
  fault::AttemptOutcome outcome = fault::AttemptOutcome::kOk;
  if (cfg_.faults != nullptr) {
    outcome = cfg_.faults->DrawAttempt(job.id, task, attempt_index, on_gpu);
  }
  MapTaskTiming timing;
  if (on_gpu) {
    if (outcome == fault::AttemptOutcome::kDeviceOom) {
      HandleGpuLaunchFailure(job, node_id, task, speculative,
                             /*injected_oom=*/true);
      return;
    }
    try {
      timing = job.source->MapTask(task, /*on_gpu=*/true);
    } catch (const GpuTaskFailure&) {
      HandleGpuLaunchFailure(job, node_id, task, speculative,
                             /*injected_oom=*/false);
      return;
    }
    --node.free_gpu;
    ++job.result.gpu_tasks;
  } else {
    timing = job.source->MapTask(task, /*on_gpu=*/false);
    HD_CHECK(node.free_cpu > 0);
    --node.free_cpu;
    ++job.result.cpu_tasks;
  }
  ++job.running_tasks;
  job.task_state[t] = TaskState::kRunning;
  if (job.first_start_time < 0.0) job.first_start_time = events_.now();
  double duration = timing.seconds;
  if (!cfg_.node_speed_factors.empty()) {
    duration *= cfg_.node_speed_factors[static_cast<std::size_t>(node_id)];
  }
  if (cfg_.faults != nullptr) {
    duration *= cfg_.faults->SlowFactor(node_id);
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " start task=" << task << " node=" << node_id
                << (on_gpu ? " GPU" : " CPU") << " dur=" << timing.seconds
                << "\n";
  }
  if (!IsLocal(job, node_id, task)) {
    ++job.result.nonlocal_tasks;
    duration += static_cast<double>(job.fs->Split(job.input_path, task).bytes) /
                cfg_.network_bytes_per_sec;
  }
  int lane = -1;
  if (cfg_.sink != nullptr) {
    auto& lanes = on_gpu ? free_gpu_lanes_[static_cast<std::size_t>(node_id)]
                         : free_cpu_lanes_[static_cast<std::size_t>(node_id)];
    HD_CHECK(!lanes.empty());
    lane = lanes.back();
    lanes.pop_back();
  }
  Attempt at;
  at.id = next_attempt_id_++;
  at.job = &job;
  at.task = task;
  at.index = attempt_index;
  at.node = node_id;
  at.on_gpu = on_gpu;
  at.speculative = speculative;
  at.start_sec = events_.now();
  at.duration = duration;
  at.output_bytes = timing.output_bytes;
  at.lane = lane;
  const std::int64_t id = at.id;
  // The completion/failure event carries only the attempt id; its
  // generation handle lives on the registry entry, and KillAttempt
  // cancels the event outright (no dead closure left to drain).
  const des::Payload payload{static_cast<std::uint64_t>(id), 0};
  if (outcome == fault::AttemptOutcome::kFail) {
    const double fail_at =
        duration * cfg_.faults->FailPoint(job.id, task, attempt_index);
    at.will_fail = true;
    at.outcome_at = events_.now() + fail_at;
    at.outcome_event =
        events_.After(fail_at, &ClusterCore::AttemptFailedEvent, this, payload);
  } else {
    at.outcome_at = events_.now() + duration;
    at.outcome_event =
        events_.After(duration, &ClusterCore::AttemptDoneEvent, this, payload);
  }
  running_.emplace(id, at);
}

void ClusterCore::MaybeSpeculate(JobState& job, int node_id) {
  if (!cfg_.speculation || job.done || !job.pending.empty()) return;
  const NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.free_cpu == 0 && node.free_gpu == 0) return;
  // Count running attempts per task: only singly-attempted tasks qualify
  // (one speculative duplicate at most), and not ones on this very node
  // (a duplicate should not share the original's failure domain).
  std::map<int, int> attempts_of;
  for (const auto& [id, at] : running_) {
    if (at.job == &job) ++attempts_of[at.task];
  }
  double best_ratio = cfg_.speculation_slowdown;
  int best_task = -1;
  for (const auto& [id, at] : running_) {
    if (at.job != &job || at.speculative) continue;
    if (at.node == node_id) continue;
    if (attempts_of[at.task] != 1) continue;
    const double mean = job.MeanDuration(at.on_gpu);
    if (mean <= 0.0) continue;
    const double ratio = (events_.now() - at.start_sec) / mean;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_task = at.task;
    }
  }
  if (best_task < 0) return;
  // Tail composition: a speculative attempt prefers an idle GPU — the
  // straggler is by definition in the tail, where Algorithm 2 forces GPUs.
  const bool on_gpu = job.policy != sched::Policy::kCpuOnly &&
                      node.free_gpu > 0 &&
                      job.cpu_only[static_cast<std::size_t>(best_task)] == 0;
  if (!on_gpu && node.free_cpu == 0) return;
  ++job.result.speculative_launched;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.speculative_launched").Add(1);
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant("hadoop", "speculative_launch", NodeTrack(node_id, 0),
                       events_.now(),
                       {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", best_task),
                        trace::Arg::Float("slowdown_ratio", best_ratio)});
  }
  StartMap(job, node_id, best_task, on_gpu, /*speculative=*/true);
}

void ClusterCore::FreeSlot(int node_id, bool on_gpu, int lane) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  if (on_gpu) {
    ++node.free_gpu;
  } else {
    ++node.free_cpu;
  }
  if (cfg_.sink != nullptr && lane >= 0) {
    auto& lanes = on_gpu ? free_gpu_lanes_[static_cast<std::size_t>(node_id)]
                         : free_cpu_lanes_[static_cast<std::size_t>(node_id)];
    lanes.push_back(lane);
  }
  // A draining tracker departs the moment its last attempt lets go of a
  // slot (the caller has already removed that attempt from the registry).
  NodeHealth& h = health_[static_cast<std::size_t>(node_id)];
  if (h.draining && !h.departed) {
    for (const auto& [id, at] : running_) {
      if (at.node == node_id) return;
    }
    DepartNode(node_id);
  }
}

void ClusterCore::OnAttemptDone(std::int64_t id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;  // killed while in flight
  const Attempt at = it->second;
  running_.erase(it);
  JobState& job = *at.job;
  JobNodeStats& stats = job.node_stats[static_cast<std::size_t>(at.node)];
  const auto t = static_cast<std::size_t>(at.task);
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", at.task),
                        trace::Arg::Str("label", job.label),
                        trace::Arg::Float("duration_sec", at.duration)};
    if (at.index > 0) args.push_back(trace::Arg::Int("attempt", at.index));
    if (at.speculative) args.push_back(trace::Arg::Int("speculative", 1));
    if (at.restored) args.push_back(trace::Arg::Int("restored", 1));
    cfg_.sink->Span("task", at.on_gpu ? "gpu_map" : "cpu_map",
                    NodeTrack(at.node, at.lane), at.start_sec, at.duration,
                    args);
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics
        ->counter(at.on_gpu ? "hadoop.gpu_tasks" : "hadoop.cpu_tasks")
        .Add(1);
    cfg_.metrics
        ->distribution(at.on_gpu ? "hadoop.gpu_task_sec"
                                 : "hadoop.cpu_task_sec")
        .Record(at.duration);
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " finish task=" << at.task << " node=" << at.node
                << (at.on_gpu ? " GPU" : " CPU") << "\n";
  }
  if (at.on_gpu) {
    gpu_busy_sec_ += at.duration;
    stats.gpu_avg =
        (stats.gpu_avg * stats.gpu_n + at.duration) / (stats.gpu_n + 1);
    ++stats.gpu_n;
    job.gpu_dur_sum += at.duration;
    ++job.gpu_dur_n;
  } else {
    cpu_busy_sec_ += at.duration;
    stats.cpu_avg =
        (stats.cpu_avg * stats.cpu_n + at.duration) / (stats.cpu_n + 1);
    ++stats.cpu_n;
    job.cpu_dur_sum += at.duration;
    ++job.cpu_dur_n;
  }
  FreeSlot(at.node, at.on_gpu, at.lane);
  job.max_speedup = std::max(job.max_speedup, stats.AveSpeedup());
  job.result.max_observed_speedup = job.max_speedup;
  --job.running_tasks;

  // Exactly-once commit: the first attempt to finish owns the task's
  // output; any concurrent attempt is killed right here, so no later
  // completion can reach this point for the same task.
  job.task_state[t] = TaskState::kDone;
  job.committed_node[t] = at.node;
  job.committed_bytes[t] = at.output_bytes;
  job.result.total_map_output_bytes += at.output_bytes;
  --job.remaining_maps;
  ++job.maps_done;
  std::vector<std::int64_t> losers;
  for (const auto& [oid, other] : running_) {
    if (other.job == &job && other.task == at.task) losers.push_back(oid);
  }
  for (std::int64_t oid : losers) {
    const bool loser_speculative = running_.at(oid).speculative;
    KillAttempt(oid, "lost_race");
    if (at.speculative) {
      // accounted below: the speculative attempt won
    } else if (loser_speculative) {
      ++job.result.speculative_losses;
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("hadoop.speculative_losses").Add(1);
      }
    }
  }
  if (at.speculative) {
    ++job.result.speculative_wins;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("hadoop.speculative_wins").Add(1);
    }
  }

  OnMapsProgress(job);
  OnTaskFinished(job, at.node);
}

void ClusterCore::OnAttemptFailed(std::int64_t id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;  // killed while in flight
  const Attempt at = it->second;
  running_.erase(it);
  JobState& job = *at.job;
  const auto t = static_cast<std::size_t>(at.task);
  const double elapsed = events_.now() - at.start_sec;
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", at.task),
                        trace::Arg::Str("label", job.label),
                        trace::Arg::Float("duration_sec", elapsed),
                        trace::Arg::Int("failed", 1)};
    if (at.index > 0) args.push_back(trace::Arg::Int("attempt", at.index));
    if (at.speculative) args.push_back(trace::Arg::Int("speculative", 1));
    if (at.restored) args.push_back(trace::Arg::Int("restored", 1));
    cfg_.sink->Span("task", at.on_gpu ? "gpu_map" : "cpu_map",
                    NodeTrack(at.node, at.lane), at.start_sec, elapsed, args);
    cfg_.sink->Instant("fault", "task_fail", NodeTrack(at.node, 0),
                       events_.now(),
                       {trace::Arg::Int("job", job.id),
                        trace::Arg::Int("task", at.task),
                        trace::Arg::Int("attempt", at.index)});
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " fail task=" << at.task << " node=" << at.node
                << " attempt=" << at.index << "\n";
  }
  if (at.on_gpu) {
    gpu_busy_sec_ += elapsed;
  } else {
    cpu_busy_sec_ += elapsed;
  }
  FreeSlot(at.node, at.on_gpu, at.lane);
  --job.running_tasks;
  ++job.result.task_failures;
  ++job.attempts_failed[t];
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("fault.task_failures").Add(1);
  }
  // Tracker health: enough failures and the JobTracker stops trusting it —
  // unless it is the last schedulable tracker standing (blacklisting it
  // would leave pending work with nowhere to run, forever).
  NodeHealth& h = health_[static_cast<std::size_t>(at.node)];
  bool other_schedulable = false;
  for (int n = 0; n < static_cast<int>(health_.size()); ++n) {
    if (n != at.node && NodeSchedulable(n)) {
      other_schedulable = true;
      break;
    }
  }
  ++h.failed_attempts;
  if (other_schedulable &&
      h.failed_attempts >= cfg_.blacklist_task_failures && !h.blacklisted) {
    h.blacklisted = true;
    ++nodes_blacklisted_;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("hadoop.nodes_blacklisted").Add(1);
    }
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant("fault", "node_blacklisted", NodeTrack(at.node, 0),
                         events_.now(),
                         {trace::Arg::Int("failed_attempts",
                                          h.failed_attempts)});
    }
  }
  if (job.attempts_failed[t] >= cfg_.max_task_attempts) {
    throw JobFailedError("job " + std::to_string(job.id) + " task " +
                         std::to_string(at.task) + " failed " +
                         std::to_string(job.attempts_failed[t]) +
                         " attempts (max_task_attempts=" +
                         std::to_string(cfg_.max_task_attempts) + ")");
  }
  if (HasRunningAttempt(job, at.task)) return;  // a twin may still commit
  // Exponential backoff before the task becomes schedulable again.
  job.task_state[t] = TaskState::kRetryWait;
  const int shift = std::min(job.attempts_failed[t] - 1, 20);
  const double backoff =
      cfg_.retry_backoff_sec * static_cast<double>(std::int64_t{1} << shift);
  job.retry_at[t] = events_.now() + backoff;
  events_.After(backoff, &ClusterCore::RetryTimerEvent, this,
                des::Payload{des::PackPtr(&job),
                             static_cast<std::uint64_t>(at.task)});
}

void ClusterCore::RequeueTask(JobState& job, int task) {
  job.task_state[static_cast<std::size_t>(task)] = TaskState::kPending;
  job.retry_at[static_cast<std::size_t>(task)] = -1.0;
  job.pending.push_back(task);
  ++job.result.task_retries;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.task_retries").Add(1);
  }
}

double ClusterCore::NodeDownSeconds(double horizon_sec) const {
  double down = 0.0;
  for (const auto& [start, end] : outages_) {
    down += std::max(0.0, std::min(end, horizon_sec) - start);
  }
  for (const NodeHealth& h : health_) {
    // Departed/unjoined trackers carry alive == false without being down;
    // their (closed) outages are already in outages_.
    if (!h.member || h.departed) continue;
    if (!h.alive) down += std::max(0.0, horizon_sec - h.down_since_sec);
  }
  return down;
}

double ClusterCore::RegisteredNodeSeconds(double horizon_sec) const {
  if (!membership_used_) {
    // Static cluster: the exact expression every pre-elastic pin was
    // computed with (bit-identical, not just equal).
    return static_cast<double>(cfg_.num_slaves) * horizon_sec;
  }
  double total = 0.0;
  for (const NodeHealth& h : health_) {
    if (!h.member && h.departed_sec < 0.0) continue;  // never admitted
    const double start = h.member || h.departed ? h.joined_sec : 0.0;
    const double end =
        h.departed ? std::min(h.departed_sec, horizon_sec) : horizon_sec;
    total += std::max(0.0, end - start);
  }
  return total;
}

// --- Checkpoint machinery --------------------------------------------------

void ClusterCore::ScheduleCheckpointTicks() {
  if (cfg_.checkpoint_interval_sec <= 0.0) return;
  // A restored engine resumes the cadence after the restore point: the
  // checkpoint it came from was tick restored_seq_, so the next write is
  // restored_seq_ + 1. Fresh runs start at tick 1.
  const int k = restored_seq_ + 1;
  ++aux_pending_;
  events_.At(static_cast<double>(k) * cfg_.checkpoint_interval_sec,
             &ClusterCore::CheckpointEvent, this,
             des::Payload{static_cast<std::uint64_t>(k), 0});
}

void ClusterCore::CheckpointTick(int k) {
  checkpoint_seq_ = k;
  // The counter bumps *before* serialization so checkpoint k records k
  // writes; a restored run then continues the count exactly where the
  // original did (registry byte-identity across a kill/restore).
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("cluster.checkpoints").Add(1);
  }
  const std::string text = CheckpointToText();
  if (!cfg_.checkpoint_path.empty()) {
    ckpt::AtomicWriteFile(cfg_.checkpoint_path, text);
  }
  if (cfg_.on_checkpoint) cfg_.on_checkpoint(k, text);
  if (cfg_.sink != nullptr) {
    cfg_.sink->Instant(
        "ha", "checkpoint", trace::Track{cfg_.trace_pid_base, 0},
        events_.now(),
        {trace::Arg::Int("seq", k),
         trace::Arg::Int("bytes", static_cast<std::int64_t>(text.size()))});
  }
  if (cfg_.stop_at_checkpoint > 0 && k >= cfg_.stop_at_checkpoint) {
    // The SIGKILL-equivalent: freeze the queue mid-flight. DrainEvents
    // stops stepping, Run() returns without completing the workload.
    halted_ = true;
    return;
  }
  if (events_.pending() > static_cast<std::size_t>(aux_pending_)) {
    ++aux_pending_;
    events_.At(static_cast<double>(k + 1) * cfg_.checkpoint_interval_sec,
               &ClusterCore::CheckpointEvent, this,
               des::Payload{static_cast<std::uint64_t>(k + 1), 0});
  }
}

void ClusterCore::DrainEvents() {
  if (cfg_.checkpoint_interval_sec > 0.0 && cfg_.stop_at_checkpoint > 0) {
    while (!halted_ && events_.Step()) {
    }
  } else {
    events_.Run();
  }
}

std::string ClusterCore::CheckpointToText() {
  HD_CHECK_MSG(false,
               "checkpointing requires a multi-job engine "
               "(MultiJobEngine/StreamEngine); this engine has no "
               "checkpoint format");
  return {};
}

namespace {

void WriteIntVec(json::Writer& w, const char* key,
                 const std::vector<int>& v) {
  w.Key(key).BeginArray();
  for (int x : v) w.Int(x);
  w.EndArray();
}

void WriteDoubleVec(json::Writer& w, const char* key,
                    const std::vector<double>& v) {
  w.Key(key).BeginArray();
  for (double x : v) w.Number(x);
  w.EndArray();
}

std::vector<int> ReadIntVec(const json::Value& obj, const char* key) {
  std::vector<int> out;
  for (const json::Value& v : ckpt::Arr(obj, key)) {
    out.push_back(static_cast<int>(v.number));
  }
  return out;
}

std::vector<double> ReadDoubleVec(const json::Value& obj, const char* key) {
  std::vector<double> out;
  for (const json::Value& v : ckpt::Arr(obj, key)) out.push_back(v.number);
  return out;
}

}  // namespace

void ClusterCore::WriteClusterSection(json::Writer& w) {
  w.Key("cluster").BeginObject();
  w.Key("next_attempt_id").Int(next_attempt_id_);
  w.Key("cpu_busy_sec").Number(cpu_busy_sec_);
  w.Key("gpu_busy_sec").Number(gpu_busy_sec_);
  w.Key("gpu_bounces").Int(gpu_bounces_);
  w.Key("nodes_crashed").Int(nodes_crashed_);
  w.Key("nodes_recovered").Int(nodes_recovered_);
  w.Key("nodes_lost").Int(nodes_lost_);
  w.Key("nodes_blacklisted").Int(nodes_blacklisted_);
  w.Key("heartbeats_dropped").Int(heartbeats_dropped_);
  w.Key("nodes_joined").Int(nodes_joined_);
  w.Key("nodes_left").Int(nodes_left_);
  w.Key("leaves_refused").Int(leaves_refused_);
  w.Key("membership_used").Bool(membership_used_);
  w.Key("outages").BeginArray();
  for (const auto& [start, end] : outages_) {
    w.BeginArray().Number(start).Number(end).EndArray();
  }
  w.EndArray();
  w.Key("nodes").BeginArray();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSlots& n = nodes_[i];
    const NodeHealth& h = health_[i];
    w.BeginObject();
    w.Key("free_cpu").Int(n.free_cpu);
    w.Key("free_gpu").Int(n.free_gpu);
    w.Key("alive").Bool(h.alive);
    w.Key("lost").Bool(h.lost);
    w.Key("blacklisted").Bool(h.blacklisted);
    w.Key("member").Bool(h.member);
    w.Key("draining").Bool(h.draining);
    w.Key("departed").Bool(h.departed);
    w.Key("last_heartbeat").Number(h.last_heartbeat_sec);
    w.Key("down_since").Number(h.down_since_sec);
    w.Key("failed_attempts").Int(h.failed_attempts);
    w.Key("heartbeat_seq").Int(h.heartbeat_seq);
    w.Key("joined").Number(h.joined_sec);
    w.Key("departed_at").Number(h.departed_sec);
    w.Key("recover_at").Number(h.recover_at_sec);
    w.EndObject();
  }
  w.EndArray();
  // running_ iterates in ascending attempt id — the original event
  // insertion order, which the restore replays to keep same-time ties
  // deterministic.
  w.Key("attempts").BeginArray();
  for (const auto& [id, at] : running_) {
    w.BeginObject();
    w.Key("id").Int(id);
    w.Key("job").Int(at.job->id);
    w.Key("task").Int(at.task);
    w.Key("index").Int(at.index);
    w.Key("node").Int(at.node);
    w.Key("gpu").Bool(at.on_gpu);
    w.Key("spec").Bool(at.speculative);
    w.Key("start").Number(at.start_sec);
    w.Key("duration").Number(at.duration);
    w.Key("bytes").Int(at.output_bytes);
    w.Key("fail").Bool(at.will_fail);
    w.Key("outcome_at").Number(at.outcome_at);
    w.EndObject();
  }
  w.EndArray();
  w.Key("lost").BeginArray();
  for (std::size_t node = 0; node < lost_tasks_.size(); ++node) {
    for (const auto& [job, task] : lost_tasks_[node]) {
      w.BeginObject();
      w.Key("node").Int(static_cast<std::int64_t>(node));
      w.Key("job").Int(job->id);
      w.Key("task").Int(task);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("plan").BeginArray();
  for (const MembershipOp& op : membership_plan_) {
    w.BeginObject();
    w.Key("kind").String(op.kind == MembershipOp::Kind::kJoin ? "join"
                                                              : "leave");
    w.Key("when").Number(op.when);
    w.Key("node").Int(op.node);
    w.Key("drain").Bool(op.drain);
    w.Key("fired").Bool(op.fired);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void ClusterCore::ApplyClusterPre(const json::Value& cluster) {
  std::vector<std::string> mismatches;
  const auto& nodes = ckpt::Arr(cluster, "nodes");
  if (nodes.size() != nodes_.size()) {
    throw CheckpointError(
        "checkpoint has " + std::to_string(nodes.size()) +
        " trackers but the engine has " + std::to_string(nodes_.size()) +
        " — re-schedule the original membership plan before restoring");
  }
  const auto& plan = ckpt::Arr(cluster, "plan");
  if (plan.size() != membership_plan_.size()) {
    throw CheckpointError(
        "checkpoint membership plan has " + std::to_string(plan.size()) +
        " ops but the engine has " +
        std::to_string(membership_plan_.size()) +
        " scheduled — re-schedule the original plan before restoring");
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    MembershipOp& op = membership_plan_[i];
    const json::Value& rec = plan[i];
    const bool rec_join = ckpt::Str(rec, "kind") == "join";
    if ((op.kind == MembershipOp::Kind::kJoin) != rec_join ||
        ckpt::Num(rec, "when") != op.when ||
        ckpt::Int(rec, "node") != op.node ||
        ckpt::Bool(rec, "drain") != op.drain) {
      mismatches.push_back("membership op " + std::to_string(i) +
                           " differs from the checkpointed plan");
      continue;
    }
    if (ckpt::Bool(rec, "fired")) {
      // Already happened before the capture: its effect is in the
      // snapshot, so the re-scheduled event must not fire again.
      events_.Cancel(op.event);
      op.event = des::EventHandle{};
      op.fired = true;
    }
  }
  if (!mismatches.empty()) {
    std::string msg = "checkpoint does not match the engine (" +
                      std::to_string(mismatches.size()) + " mismatch" +
                      (mismatches.size() == 1 ? "" : "es") + "):";
    for (const std::string& m : mismatches) msg += "\n  - " + m;
    throw CheckpointError(msg);
  }
  next_attempt_id_ = ckpt::Int(cluster, "next_attempt_id");
  cpu_busy_sec_ = ckpt::Num(cluster, "cpu_busy_sec");
  gpu_busy_sec_ = ckpt::Num(cluster, "gpu_busy_sec");
  gpu_bounces_ = ckpt::Int(cluster, "gpu_bounces");
  nodes_crashed_ = ckpt::Int(cluster, "nodes_crashed");
  nodes_recovered_ = ckpt::Int(cluster, "nodes_recovered");
  nodes_lost_ = ckpt::Int(cluster, "nodes_lost");
  nodes_blacklisted_ = ckpt::Int(cluster, "nodes_blacklisted");
  heartbeats_dropped_ = ckpt::Int(cluster, "heartbeats_dropped");
  nodes_joined_ = ckpt::Int(cluster, "nodes_joined");
  nodes_left_ = ckpt::Int(cluster, "nodes_left");
  leaves_refused_ = ckpt::Int(cluster, "leaves_refused");
  outages_.clear();
  for (const json::Value& o : ckpt::Arr(cluster, "outages")) {
    if (!o.is_array() || o.array.size() != 2) {
      throw CheckpointError("corrupt checkpoint: outage is not a [s, e] pair");
    }
    outages_.emplace_back(o.array[0].number, o.array[1].number);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const json::Value& rec = nodes[i];
    NodeSlots& n = nodes_[i];
    NodeHealth& h = health_[i];
    n.free_cpu = static_cast<int>(ckpt::Int(rec, "free_cpu"));
    n.free_gpu = static_cast<int>(ckpt::Int(rec, "free_gpu"));
    h.alive = ckpt::Bool(rec, "alive");
    h.lost = ckpt::Bool(rec, "lost");
    h.blacklisted = ckpt::Bool(rec, "blacklisted");
    h.member = ckpt::Bool(rec, "member");
    h.draining = ckpt::Bool(rec, "draining");
    h.departed = ckpt::Bool(rec, "departed");
    h.last_heartbeat_sec = ckpt::Num(rec, "last_heartbeat");
    h.down_since_sec = ckpt::Num(rec, "down_since");
    h.failed_attempts = static_cast<int>(ckpt::Int(rec, "failed_attempts"));
    h.heartbeat_seq = ckpt::Int(rec, "heartbeat_seq");
    h.joined_sec = ckpt::Num(rec, "joined");
    h.departed_sec = ckpt::Num(rec, "departed_at");
    h.recover_at_sec = ckpt::Num(rec, "recover_at");
    if (h.member && !h.departed && !h.alive && h.recover_at_sec >= 0.0) {
      recover_events_[i] = events_.At(
          h.recover_at_sec, &ClusterCore::RecoverEvent, this,
          des::Payload{static_cast<std::uint64_t>(i), 0});
    }
    // A tracker admitted before the capture never ran AdmitNode in this
    // process: name its trace lanes now (attempt restore pops them).
    if (cfg_.sink != nullptr && h.member &&
        static_cast<int>(i) >= cfg_.num_slaves) {
      const int node_id = static_cast<int>(i);
      cfg_.sink->NameProcess(NodeTrack(node_id, 0).pid,
                             "node" + std::to_string(node_id));
      cfg_.sink->NameThread(NodeTrack(node_id, 0), "tasktracker");
      auto& cpu = free_cpu_lanes_[i];
      auto& gpu = free_gpu_lanes_[i];
      cpu.clear();
      gpu.clear();
      for (int s = cfg_.map_slots_per_node; s >= 1; --s) {
        cfg_.sink->NameThread(NodeTrack(node_id, s),
                              "cpu" + std::to_string(s - 1));
        cpu.push_back(s);
      }
      for (int g = cfg_.gpus_per_node; g >= 1; --g) {
        const int tid = cfg_.map_slots_per_node + g;
        cfg_.sink->NameThread(NodeTrack(node_id, tid),
                              "gpu" + std::to_string(g - 1));
        gpu.push_back(tid);
      }
    }
  }
}

void ClusterCore::WriteJobState(json::Writer& w, const JobState& job) {
  w.BeginObject();
  w.Key("id").Int(job.id);
  w.Key("label").String(job.label);
  w.Key("pool").Int(job.pool);
  if (std::isfinite(job.deadline_sec)) {
    w.Key("deadline").Number(job.deadline_sec);
  } else {
    w.Key("deadline").Null();
  }
  w.Key("submit").Number(job.submit_time);
  w.Key("first_start").Number(job.first_start_time);
  w.Key("activated").Bool(job.activated);
  w.Key("done").Bool(job.done);
  WriteIntVec(w, "pending", job.pending);
  w.Key("remaining_maps").Int(job.remaining_maps);
  w.Key("maps_done").Int(job.maps_done);
  w.Key("running_tasks").Int(job.running_tasks);
  w.Key("max_speedup").Number(job.max_speedup);
  w.Key("node_stats").BeginArray();
  for (const JobNodeStats& s : job.node_stats) {
    w.BeginObject();
    w.Key("cpu_avg").Number(s.cpu_avg);
    w.Key("cpu_n").Int(s.cpu_n);
    w.Key("gpu_avg").Number(s.gpu_avg);
    w.Key("gpu_n").Int(s.gpu_n);
    w.EndObject();
  }
  w.EndArray();
  w.Key("reduces_scheduled").Bool(job.reduces_scheduled);
  WriteDoubleVec(w, "reduce_start", job.reduce_start);
  w.Key("tail_onset_traced").Bool(job.tail_onset_traced);
  w.Key("task_state").BeginArray();
  for (TaskState s : job.task_state) w.Int(static_cast<int>(s));
  w.EndArray();
  WriteIntVec(w, "attempts_started", job.attempts_started);
  WriteIntVec(w, "attempts_failed", job.attempts_failed);
  WriteIntVec(w, "gpu_faults", job.gpu_faults);
  w.Key("cpu_only").BeginArray();
  for (unsigned char c : job.cpu_only) w.Int(c);
  w.EndArray();
  WriteIntVec(w, "committed_node", job.committed_node);
  w.Key("committed_bytes").BeginArray();
  for (std::int64_t b : job.committed_bytes) w.Int(b);
  w.EndArray();
  WriteDoubleVec(w, "retry_at", job.retry_at);
  w.Key("cpu_dur_sum").Number(job.cpu_dur_sum);
  w.Key("cpu_dur_n").Int(job.cpu_dur_n);
  w.Key("gpu_dur_sum").Number(job.gpu_dur_sum);
  w.Key("gpu_dur_n").Int(job.gpu_dur_n);
  const JobResult& r = job.result;
  w.Key("result").BeginObject();
  w.Key("makespan_sec").Number(r.makespan_sec);
  w.Key("map_phase_end_sec").Number(r.map_phase_end_sec);
  w.Key("cpu_tasks").Int(r.cpu_tasks);
  w.Key("gpu_tasks").Int(r.gpu_tasks);
  w.Key("gpu_failures").Int(r.gpu_failures);
  w.Key("nonlocal_tasks").Int(r.nonlocal_tasks);
  w.Key("total_map_output_bytes").Int(r.total_map_output_bytes);
  w.Key("max_observed_speedup").Number(r.max_observed_speedup);
  w.Key("task_failures").Int(r.task_failures);
  w.Key("task_retries").Int(r.task_retries);
  w.Key("killed_attempts").Int(r.killed_attempts);
  w.Key("maps_reexecuted").Int(r.maps_reexecuted);
  w.Key("gpu_demotions").Int(r.gpu_demotions);
  w.Key("speculative_launched").Int(r.speculative_launched);
  w.Key("speculative_wins").Int(r.speculative_wins);
  w.Key("speculative_losses").Int(r.speculative_losses);
  w.Key("preempted_attempts").Int(r.preempted_attempts);
  w.Key("nodes_lost").Int(r.nodes_lost);
  w.Key("nodes_blacklisted").Int(r.nodes_blacklisted);
  w.Key("final_output").BeginArray();
  for (const gpurt::KvPair& kv : r.final_output) {
    w.BeginArray().String(kv.key).String(kv.value).EndArray();
  }
  w.EndArray();
  w.EndObject();
  WriteJobExtra(w, job);
  w.EndObject();
}

void ClusterCore::ApplyJobState(const json::Value& entry, JobState& job) {
  if (ckpt::Str(entry, "label") != job.label) {
    throw CheckpointError("checkpoint job " +
                          std::to_string(ckpt::Int(entry, "id")) +
                          " is labeled '" + ckpt::Str(entry, "label") +
                          "' but the re-submitted job is '" + job.label +
                          "' — submit the original workload before restoring");
  }
  job.pool = static_cast<int>(ckpt::Int(entry, "pool"));
  const json::Value& deadline = ckpt::Get(entry, "deadline");
  job.deadline_sec = deadline.is_number()
                         ? deadline.number
                         : std::numeric_limits<double>::infinity();
  job.submit_time = ckpt::Num(entry, "submit");
  job.first_start_time = ckpt::Num(entry, "first_start");
  job.activated = ckpt::Bool(entry, "activated");
  job.done = ckpt::Bool(entry, "done");
  job.pending = ReadIntVec(entry, "pending");
  job.remaining_maps = static_cast<int>(ckpt::Int(entry, "remaining_maps"));
  job.maps_done = static_cast<int>(ckpt::Int(entry, "maps_done"));
  job.running_tasks = static_cast<int>(ckpt::Int(entry, "running_tasks"));
  job.max_speedup = ckpt::Num(entry, "max_speedup");
  const auto& stats = ckpt::Arr(entry, "node_stats");
  job.node_stats.assign(stats.size(), {});
  for (std::size_t i = 0; i < stats.size(); ++i) {
    JobNodeStats& s = job.node_stats[i];
    s.cpu_avg = ckpt::Num(stats[i], "cpu_avg");
    s.cpu_n = ckpt::Int(stats[i], "cpu_n");
    s.gpu_avg = ckpt::Num(stats[i], "gpu_avg");
    s.gpu_n = ckpt::Int(stats[i], "gpu_n");
  }
  job.reduces_scheduled = ckpt::Bool(entry, "reduces_scheduled");
  job.reduce_start = ReadDoubleVec(entry, "reduce_start");
  job.tail_onset_traced = ckpt::Bool(entry, "tail_onset_traced");
  job.task_state.clear();
  for (const json::Value& v : ckpt::Arr(entry, "task_state")) {
    job.task_state.push_back(static_cast<TaskState>(v.number));
  }
  job.attempts_started = ReadIntVec(entry, "attempts_started");
  job.attempts_failed = ReadIntVec(entry, "attempts_failed");
  job.gpu_faults = ReadIntVec(entry, "gpu_faults");
  job.cpu_only.clear();
  for (const json::Value& v : ckpt::Arr(entry, "cpu_only")) {
    job.cpu_only.push_back(static_cast<unsigned char>(v.number));
  }
  job.committed_node = ReadIntVec(entry, "committed_node");
  job.committed_bytes.clear();
  for (const json::Value& v : ckpt::Arr(entry, "committed_bytes")) {
    job.committed_bytes.push_back(static_cast<std::int64_t>(v.number));
  }
  job.retry_at = ReadDoubleVec(entry, "retry_at");
  job.cpu_dur_sum = ckpt::Num(entry, "cpu_dur_sum");
  job.cpu_dur_n = ckpt::Int(entry, "cpu_dur_n");
  job.gpu_dur_sum = ckpt::Num(entry, "gpu_dur_sum");
  job.gpu_dur_n = ckpt::Int(entry, "gpu_dur_n");
  const json::Value& res = ckpt::Get(entry, "result");
  JobResult& r = job.result;
  r.makespan_sec = ckpt::Num(res, "makespan_sec");
  r.map_phase_end_sec = ckpt::Num(res, "map_phase_end_sec");
  r.cpu_tasks = ckpt::Int(res, "cpu_tasks");
  r.gpu_tasks = ckpt::Int(res, "gpu_tasks");
  r.gpu_failures = ckpt::Int(res, "gpu_failures");
  r.nonlocal_tasks = ckpt::Int(res, "nonlocal_tasks");
  r.total_map_output_bytes = ckpt::Int(res, "total_map_output_bytes");
  r.max_observed_speedup = ckpt::Num(res, "max_observed_speedup");
  r.task_failures = ckpt::Int(res, "task_failures");
  r.task_retries = ckpt::Int(res, "task_retries");
  r.killed_attempts = ckpt::Int(res, "killed_attempts");
  r.maps_reexecuted = ckpt::Int(res, "maps_reexecuted");
  r.gpu_demotions = ckpt::Int(res, "gpu_demotions");
  r.speculative_launched = ckpt::Int(res, "speculative_launched");
  r.speculative_wins = ckpt::Int(res, "speculative_wins");
  r.speculative_losses = ckpt::Int(res, "speculative_losses");
  r.preempted_attempts = ckpt::Int(res, "preempted_attempts");
  r.nodes_lost = ckpt::Int(res, "nodes_lost");
  r.nodes_blacklisted = ckpt::Int(res, "nodes_blacklisted");
  r.final_output.clear();
  for (const json::Value& kv : ckpt::Arr(res, "final_output")) {
    if (!kv.is_array() || kv.array.size() != 2) {
      throw CheckpointError(
          "corrupt checkpoint: final_output entry is not a [k, v] pair");
    }
    r.final_output.push_back({kv.array[0].string, kv.array[1].string});
  }
  // Re-arm the pending retry backoff timers exactly where they were.
  for (std::size_t t = 0; t < job.task_state.size(); ++t) {
    if (job.task_state[t] == TaskState::kRetryWait && job.retry_at[t] >= 0.0) {
      events_.At(job.retry_at[t], &ClusterCore::RetryTimerEvent, this,
                 des::Payload{des::PackPtr(&job),
                              static_cast<std::uint64_t>(t)});
    }
  }
}

void ClusterCore::ApplyAttempts(
    const json::Value& cluster,
    const std::function<JobState*(int)>& job_by_id) {
  HD_CHECK(running_.empty());
  for (const json::Value& rec : ckpt::Arr(cluster, "attempts")) {
    Attempt at;
    at.id = ckpt::Int(rec, "id");
    const int job_id = static_cast<int>(ckpt::Int(rec, "job"));
    at.job = job_by_id(job_id);
    if (at.job == nullptr) {
      throw CheckpointError("checkpoint attempt references unknown job " +
                            std::to_string(job_id));
    }
    at.task = static_cast<int>(ckpt::Int(rec, "task"));
    at.index = static_cast<int>(ckpt::Int(rec, "index"));
    at.node = static_cast<int>(ckpt::Int(rec, "node"));
    at.on_gpu = ckpt::Bool(rec, "gpu");
    at.speculative = ckpt::Bool(rec, "spec");
    at.start_sec = ckpt::Num(rec, "start");
    at.duration = ckpt::Num(rec, "duration");
    at.output_bytes = ckpt::Int(rec, "bytes");
    at.will_fail = ckpt::Bool(rec, "fail");
    at.outcome_at = ckpt::Num(rec, "outcome_at");
    at.restored = true;
    if (cfg_.sink != nullptr) {
      auto& lanes = at.on_gpu
                        ? free_gpu_lanes_[static_cast<std::size_t>(at.node)]
                        : free_cpu_lanes_[static_cast<std::size_t>(at.node)];
      HD_CHECK(!lanes.empty());
      at.lane = lanes.back();
      lanes.pop_back();
    }
    const des::Payload payload{static_cast<std::uint64_t>(at.id), 0};
    at.outcome_event =
        at.will_fail
            ? events_.At(at.outcome_at, &ClusterCore::AttemptFailedEvent,
                         this, payload)
            : events_.At(at.outcome_at, &ClusterCore::AttemptDoneEvent, this,
                         payload);
    running_.emplace(at.id, at);
  }
  for (const json::Value& rec : ckpt::Arr(cluster, "lost")) {
    const int job_id = static_cast<int>(ckpt::Int(rec, "job"));
    JobState* job = job_by_id(job_id);
    if (job == nullptr) {
      throw CheckpointError("checkpoint lost-task references unknown job " +
                            std::to_string(job_id));
    }
    lost_tasks_[static_cast<std::size_t>(ckpt::Int(rec, "node"))]
        .emplace_back(job, static_cast<int>(ckpt::Int(rec, "task")));
  }
}

void ClusterCore::OnMapsProgress(JobState& job) {
  const int total = job.source->num_map_tasks();
  if (!job.reduces_scheduled && job.source->num_reducers() > 0 &&
      job.maps_done >= static_cast<int>(cfg_.reduce_slowstart * total)) {
    job.reduces_scheduled = true;
    const int reduce_capacity = cfg_.num_slaves * cfg_.reduce_slots_per_node;
    HD_CHECK_MSG(job.source->num_reducers() <= reduce_capacity,
                 "more reducers than reduce slots; wave scheduling of "
                 "reducers is not modeled");
    job.reduce_start.assign(
        static_cast<std::size_t>(job.source->num_reducers()), events_.now());
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant(
          "hadoop", "reduce_slowstart", JobTrack(job), events_.now(),
          {trace::Arg::Int("job", job.id),
           trace::Arg::Int("maps_done", job.maps_done),
           trace::Arg::Int("reducers", job.source->num_reducers())});
    }
  }
  if (job.remaining_maps == 0) FinishJob(job);
}

void ClusterCore::FinishJob(JobState& job) {
  HD_CHECK(!job.done);
  job.done = true;
  job.result.map_phase_end_sec = events_.now();
  double makespan = job.result.map_phase_end_sec;
  if (job.source->num_reducers() > 0) {
    if (!job.reduces_scheduled) {
      job.reduce_start.assign(
          static_cast<std::size_t>(job.source->num_reducers()), events_.now());
    }
    const double shuffle_bytes_per_reducer =
        static_cast<double>(job.result.total_map_output_bytes) /
        job.source->num_reducers();
    for (int r = 0; r < job.source->num_reducers(); ++r) {
      const double fetch_done =
          std::max(job.result.map_phase_end_sec,
                   job.reduce_start[static_cast<std::size_t>(r)] +
                       shuffle_bytes_per_reducer / cfg_.network_bytes_per_sec);
      makespan = std::max(makespan, fetch_done + job.source->ReduceSeconds(r));
    }
  }
  job.result.makespan_sec = makespan;
  job.result.final_output = job.source->FinalOutput();
  job.result.nodes_lost = nodes_lost_;
  job.result.nodes_blacklisted = nodes_blacklisted_;
  if (cfg_.sink != nullptr) {
    const std::string name =
        job.label.empty() ? "job" + std::to_string(job.id) : job.label;
    cfg_.sink->NameThread(JobTrack(job), "job" + std::to_string(job.id));
    // Map phase and full job as nested spans on the job's JobTracker lane.
    cfg_.sink->Span(
        "job", name, JobTrack(job), job.submit_time,
        makespan - job.submit_time,
        {trace::Arg::Int("job", job.id),
         trace::Arg::Str("policy", sched::PolicyName(job.policy)),
         trace::Arg::Int("cpu_tasks", job.result.cpu_tasks),
         trace::Arg::Int("gpu_tasks", job.result.gpu_tasks),
         trace::Arg::Int("nonlocal_tasks", job.result.nonlocal_tasks),
         trace::Arg::Float("max_observed_speedup",
                           job.result.max_observed_speedup)});
    if (job.first_start_time >= 0.0) {
      cfg_.sink->Span("job", "map_phase", JobTrack(job), job.first_start_time,
                      job.result.map_phase_end_sec - job.first_start_time,
                      {trace::Arg::Int("maps", job.maps_done)});
    }
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.jobs").Add(1);
    cfg_.metrics->distribution("hadoop.job_latency_sec")
        .Record(makespan - job.submit_time);
  }
  OnJobFinished(job);
}

}  // namespace hd::hadoop
