// Seeded open-loop record sources for standing pipelines.
//
// A streaming pipeline ingests an unbounded record stream; the simulator
// models it as a deterministic arrival process over the DES clock. Three
// rate shapes cover the service-traffic patterns the steady-state bench
// sweeps — constant Poisson, on/off bursty, and a diurnal sinusoid — plus
// a replay shape that plays back an explicit gap list for tests that need
// exact arrival instants (trigger ties, empty windows).
//
// All shapes are sampled by Lewis–Shedler thinning over the instantaneous
// rate with a per-source Prng, so a (spec, seed) pair generates the same
// arrival sequence on every machine. The bursty and diurnal shapes are
// normalised to the configured *mean* rate: ramping mean_rate_per_sec
// scales offered load without changing the shape.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/prng.h"

namespace hd::stream {

enum class RateShape { kPoisson, kBursty, kDiurnal, kReplay };

const char* RateShapeName(RateShape s);

struct SourceSpec {
  RateShape shape = RateShape::kPoisson;
  double mean_rate_per_sec = 1.0;  // long-run average record rate
  std::uint64_t seed = 1;

  // kBursty: each period spends `burst_duty` of its length at
  // burst_factor x the mean rate and the remainder at the compensating low
  // rate, so the long-run mean stays mean_rate_per_sec. Requires
  // burst_factor * burst_duty <= 1.
  double burst_period_sec = 120.0;
  double burst_duty = 0.25;
  double burst_factor = 3.0;

  // kDiurnal: rate(t) = mean * (1 + amplitude * sin(2*pi*t/period)),
  // amplitude in [0, 1).
  double diurnal_period_sec = 600.0;
  double diurnal_amplitude = 0.5;

  // kReplay: explicit inter-arrival gaps, played back verbatim and then
  // exhausted. The deterministic hook for windowing edge-case tests.
  std::vector<double> replay_gaps;
};

// HD_CHECKs every SourceSpec invariant; throws CheckError on violation.
void ValidateSourceSpec(const SourceSpec& spec);

// Deterministic open-loop arrival process. Single consumer: gaps are drawn
// sequentially, so one ArrivalSource feeds exactly one pipeline.
class ArrivalSource {
 public:
  explicit ArrivalSource(SourceSpec spec);

  // Instantaneous record rate of the shape at absolute time `t`.
  double RateAt(double t) const;
  // The thinning envelope: max over t of RateAt(t).
  double PeakRate() const;

  // The next arrival instant strictly after `t`; +infinity when the
  // source is exhausted (replay shapes only).
  double NextArrival(double t);

  const SourceSpec& spec() const { return spec_; }

  // Checkpoint access: the generator words plus the replay cursor are the
  // whole draw state, so restoring both reproduces the arrival sequence
  // from the capture point exactly.
  std::array<std::uint64_t, 4> rng_state() const { return prng_.State(); }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) {
    prng_.SetState(s);
  }
  std::size_t replay_next() const { return replay_next_; }
  void set_replay_next(std::size_t n) { replay_next_ = n; }

 private:
  SourceSpec spec_;
  Prng prng_;
  std::size_t replay_next_ = 0;
};

}  // namespace hd::stream
