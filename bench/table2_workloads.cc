// Reproduces Table 2: the benchmark suite and its per-cluster workload
// parameters.
#include <string>

#include "apps/benchmark.h"
#include "bench/reporter.h"
#include "common/strings.h"

int main(int argc, char** argv) {
  using namespace hd;
  bench::Reporter rep("table2_workloads", argc, argv);
  rep.out() << "Table 2: Description of the Benchmarks Used\n\n";
  auto& t = rep.AddTable(
      "table2", {"Benchmark", "%MapComb", "Nature", "Combiner", "Red(C1)",
                 "Red(C2)", "Maps(C1)", "Maps(C2)", "In GB(C1)", "In GB(C2)"});
  for (const auto& b : apps::AllBenchmarks()) {
    t.Row()
        .Cell(b.name + " (" + b.id + ")")
        .Cell(b.pct_map_combine_active)
        .Cell(b.io_intensive ? "IO" : "Compute")
        .Cell(b.has_combiner ? "Yes" : "No")
        .Cell(b.cluster1.reduce_tasks)
        .Cell(b.cluster2.available ? std::to_string(b.cluster2.reduce_tasks)
                                   : "NA")
        .Cell(b.cluster1.map_tasks)
        .Cell(b.cluster2.available ? std::to_string(b.cluster2.map_tasks)
                                   : "NA")
        .Cell(b.cluster1.input_gb, 0)
        .Cell(b.cluster2.available ? FormatDouble(b.cluster2.input_gb, 0)
                                   : "NA");
  }
  rep.Print(t);
  rep.out() << "\nEach benchmark ships as HeteroDoop-annotated mini-C "
               "streaming filters\n(map";
  rep.out() << " + optional combine/reduce) with a synthetic input "
               "generator.\n";
  return rep.Finish();
}
