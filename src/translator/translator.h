// The HeteroDoop source-to-source translator (§4 of the paper).
//
// Input: a sequential Hadoop Streaming filter program in mini-C carrying
// `#pragma mapreduce mapper|combiner ...` directives (Table 1).
// Output: a TranslatedProgram — the parsed AST plus a KernelPlan per
// directive. A KernelPlan is this repository's analog of the generated CUDA
// kernel of Listings 3/4: it records the region to execute per GPU thread,
// the Algorithm-1 classification of every external variable (constant /
// texture / global / firstprivate / private placement), the KV slot layout
// for the global KV store, and the launch-tuning hints (blocks/threads/
// kvpairs). The GPU runtime (src/gpurt) consumes the plan to execute the
// region per simulated thread with the stdio builtins swapped for
// getRecord/emitKV/getKV/storeKV, exactly as the paper's translator swaps
// the calls in the generated source.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "minic/ast.h"
#include "minic/sema.h"

namespace hd::translator {

// Raised when a program fails static analysis (or a backstop invariant).
// what() is the rendered multi-diagnostic report; diagnostics() exposes the
// structured findings (severity / HDnnn id / pass / file:line:col / hint)
// for callers that want machine-readable errors.
class TranslateError : public std::runtime_error {
 public:
  explicit TranslateError(const std::string& what)
      : std::runtime_error(what) {}
  TranslateError(const std::string& what,
                 std::vector<analysis::Diagnostic> diagnostics)
      : std::runtime_error(what), diagnostics_(std::move(diagnostics)) {}

  const std::vector<analysis::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<analysis::Diagnostic> diagnostics_;
};

// Placement of one kernel-external variable (Algorithm 1).
enum class VarClass {
  kSharedROScalar,  // kernel parameter -> constant memory
  kSharedROArray,   // device global memory, copied in
  kTexture,         // texture memory, copied in (read-only cache)
  kFirstPrivate,    // private per thread, initialised from host value
  kPrivate,         // private per thread, uninitialised
};

const char* VarClassName(VarClass c);

struct VarPlan {
  std::string name;
  minic::Type type;
  VarClass cls = VarClass::kPrivate;
};

// Fixed-slot layout of emitted KV pairs in the global KV store. Keys and
// values are stored as NUL-padded text so the GPU path emits byte-identical
// pairs to the CPU streaming path (printf "%s\t%d\n").
struct KvLayout {
  int key_slot_bytes = 0;
  int val_slot_bytes = 0;
  bool key_is_array = false;  // char[] keys/values enable char4 vector R/W
  bool val_is_array = false;
};

struct KernelPlan {
  minic::Directive::Kind kind = minic::Directive::Kind::kMapper;
  const minic::FunctionDef* fn = nullptr;
  const minic::Stmt* region = nullptr;
  const minic::Directive* directive = nullptr;

  std::vector<VarPlan> vars;

  std::string key_var;
  std::string value_var;
  // Combiner only (incoming KV pair variables).
  std::string keyin_var;
  std::string valuein_var;

  KvLayout kv;

  // Launch hints; 0 = use runtime defaults.
  int kvpairs_hint = 0;
  int blocks_hint = 0;
  int threads_hint = 0;

  const VarPlan* FindVar(const std::string& name) const;
};

struct TranslatedProgram {
  std::shared_ptr<minic::TranslationUnit> unit;
  std::optional<KernelPlan> map_plan;
  std::optional<KernelPlan> combine_plan;
};

struct TranslateOptions {
  // When false, only user-annotated firstprivate variables are initialised
  // (disables the compiler's automatic detection; used by ablation tests).
  bool auto_firstprivate = true;
  // Text slot widths for keys/values rendered from numeric variables.
  int int_text_bytes = 16;
  int double_text_bytes = 28;
  // Name used in diagnostic locations ("<source>" for in-memory programs).
  std::string source_name = "<source>";
  // When the source carries no mapreduce pragma, run the hdinfer synthesis
  // engine first and translate the annotated program it produces. Inference
  // failures surface as a TranslateError carrying the HD6xx diagnostics.
  bool infer_missing_directives = false;
};

// Parses `source`, runs every hdlint analysis pass, and builds kernel plans
// for every mapreduce directive in main(). Invalid programs throw one
// TranslateError whose what() reports ALL analysis errors (not just the
// first) and whose diagnostics() carries the structured findings.
TranslatedProgram Translate(const std::string& source,
                            const TranslateOptions& options = {});

}  // namespace hd::translator
