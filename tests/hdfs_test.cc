#include <gtest/gtest.h>

#include "hdfs/hdfs.h"

namespace hd::hdfs {
namespace {

TEST(Hdfs, PutFileAndReadBack) {
  Hdfs fs(4, HdfsConfig{.block_size = 1024, .replication = 2});
  fs.PutFile("/in", {"split zero", "split one"});
  EXPECT_TRUE(fs.Exists("/in"));
  EXPECT_EQ(fs.NumSplits("/in"), 2);
  EXPECT_EQ(fs.SplitContent("/in", 0), "split zero");
  EXPECT_EQ(fs.SplitContent("/in", 1), "split one");
  EXPECT_TRUE(fs.HasContent("/in"));
  EXPECT_EQ(fs.TotalBytes("/in"), 19);
}

TEST(Hdfs, ReplicationPlacesDistinctNodes) {
  Hdfs fs(5, HdfsConfig{.block_size = 1 << 20, .replication = 3});
  fs.PutFile("/f", {"a", "b", "c", "d"});
  for (int i = 0; i < 4; ++i) {
    const SplitInfo& s = fs.Split("/f", i);
    ASSERT_EQ(s.replicas.size(), 3u);
    std::set<int> uniq(s.replicas.begin(), s.replicas.end());
    EXPECT_EQ(uniq.size(), 3u) << "split " << i;
    for (int r : s.replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 5);
    }
  }
}

TEST(Hdfs, LocalityQuery) {
  Hdfs fs(3, HdfsConfig{.block_size = 64, .replication = 1});
  fs.PutFile("/f", {"a", "b", "c"});
  for (int i = 0; i < 3; ++i) {
    const SplitInfo& s = fs.Split("/f", i);
    EXPECT_TRUE(s.IsLocalTo(s.replicas[0]));
    for (int n = 0; n < 3; ++n) {
      if (n != s.replicas[0]) EXPECT_FALSE(s.IsLocalTo(n));
    }
  }
}

TEST(Hdfs, RoundRobinPrimarySpreadsLoad) {
  Hdfs fs(4, HdfsConfig{.block_size = 64, .replication = 1});
  fs.PutFile("/f", {"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"});
  // 8 splits of 2 bytes over 4 nodes with replication 1: 4 bytes per node.
  for (int n = 0; n < 4; ++n) EXPECT_EQ(fs.NodeUsage(n), 4);
}

TEST(Hdfs, SyntheticFileHasNoContent) {
  Hdfs fs(4, HdfsConfig{});
  fs.PutSyntheticFile("/big", 100, 128 << 20);
  EXPECT_EQ(fs.NumSplits("/big"), 100);
  EXPECT_FALSE(fs.HasContent("/big"));
  EXPECT_THROW(fs.SplitContent("/big", 0), CheckError);
  EXPECT_EQ(fs.TotalBytes("/big"), 100LL * (128 << 20));
}

TEST(Hdfs, DeleteReleasesUsage) {
  Hdfs fs(2, HdfsConfig{.block_size = 64, .replication = 2});
  fs.PutFile("/f", {"abcd"});
  EXPECT_EQ(fs.NodeUsage(0) + fs.NodeUsage(1), 8);
  fs.Delete("/f");
  EXPECT_FALSE(fs.Exists("/f"));
  EXPECT_EQ(fs.NodeUsage(0) + fs.NodeUsage(1), 0);
}

TEST(Hdfs, DuplicatePathRejected) {
  Hdfs fs(2, HdfsConfig{.block_size = 64, .replication = 1});
  fs.PutSyntheticFile("/f", 1, 1);
  EXPECT_THROW(fs.PutSyntheticFile("/f", 1, 1), CheckError);
}

TEST(Hdfs, OversizedSplitRejected) {
  Hdfs fs(2, HdfsConfig{.block_size = 4, .replication = 1});
  EXPECT_THROW(fs.PutFile("/f", {"too large"}), CheckError);
}

TEST(Hdfs, ReplicationBeyondClusterRejected) {
  EXPECT_THROW(Hdfs(2, HdfsConfig{.block_size = 64, .replication = 3}),
               CheckError);
}

TEST(Hdfs, PlacementDeterministicForSeed) {
  Hdfs a(8, HdfsConfig{.block_size = 64, .replication = 3}, 42);
  Hdfs b(8, HdfsConfig{.block_size = 64, .replication = 3}, 42);
  a.PutSyntheticFile("/f", 10, 16);
  b.PutSyntheticFile("/f", 10, 16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Split("/f", i).replicas, b.Split("/f", i).replicas);
  }
}

}  // namespace
}  // namespace hd::hdfs
