#include "des/scheduler.h"

#include <cmath>
#include <queue>

namespace hd::des {

Scheduler::Scheduler() = default;

Scheduler::~Scheduler() {
  // Pending closure events own their std::function; free them so a
  // scheduler destroyed mid-run (engine teardown after JobFailedError)
  // does not leak under ASan.
  for (Record& r : pool_) {
    if (r.live && r.fn == &Scheduler::RunClosure) {
      delete static_cast<std::function<void()>*>(r.ctx);
    }
  }
}

std::uint32_t Scheduler::Acquire() {
  if (free_head_ != kNoFree) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  HD_CHECK_MSG(pool_.size() < kNoFree, "event pool exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Scheduler::Release(std::uint32_t slot) {
  Record& r = pool_[slot];
  r.live = false;
  r.fn = nullptr;
  r.ctx = nullptr;
  // Bumping the generation is what invalidates outstanding handles and
  // any stale key still sitting in the backend. Generation 0 is the
  // null-handle sentinel; skip it on wraparound.
  if (++r.gen == 0) r.gen = 1;
  r.next_free = free_head_;
  free_head_ = slot;
}

EventHandle Scheduler::At(double time, Handler fn, void* ctx,
                          Payload payload) {
  HD_CHECK_MSG(std::isfinite(time) && time >= now_,
               "event scheduled in the past or at a non-finite time (t="
                   << time << ", now=" << now_ << ")");
  HD_CHECK(fn != nullptr);
  const std::uint32_t slot = Acquire();
  Record& r = pool_[slot];
  r.fn = fn;
  r.ctx = ctx;
  r.payload = payload;
  r.live = true;
  ++live_;
  Push(Key{time, seq_++, slot, r.gen});
  return EventHandle{slot, r.gen};
}

EventHandle Scheduler::After(double delay, Handler fn, void* ctx,
                             Payload payload) {
  HD_CHECK_MSG(std::isfinite(delay) && delay >= 0.0,
               "After() requires a finite non-negative delay, got " << delay);
  return At(now_ + delay, fn, ctx, payload);
}

void Scheduler::RunClosure(void* ctx, const Payload&) {
  // unique_ptr so the function is freed even when the callback throws
  // (JobFailedError propagates out of Run() by design).
  std::unique_ptr<std::function<void()>> fn(
      static_cast<std::function<void()>*>(ctx));
  (*fn)();
}

EventHandle Scheduler::At(double time, std::function<void()> fn) {
  auto* boxed = new std::function<void()>(std::move(fn));
  try {
    return At(time, &Scheduler::RunClosure, boxed);
  } catch (...) {
    delete boxed;
    throw;
  }
}

EventHandle Scheduler::After(double delay, std::function<void()> fn) {
  HD_CHECK_MSG(std::isfinite(delay) && delay >= 0.0,
               "After() requires a finite non-negative delay, got " << delay);
  return At(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventHandle h) {
  if (h.null() || h.slot >= pool_.size()) return false;
  Record& r = pool_[h.slot];
  if (!r.live || r.gen != h.gen) return false;
  if (r.fn == &Scheduler::RunClosure) {
    delete static_cast<std::function<void()>*>(r.ctx);
  }
  Release(h.slot);
  --live_;
  return true;
}

bool Scheduler::Pending(EventHandle h) const {
  if (h.null() || h.slot >= pool_.size()) return false;
  const Record& r = pool_[h.slot];
  return r.live && r.gen == h.gen;
}

bool Scheduler::Step() {
  Key k;
  while (PopMin(&k)) {
    if (DispatchKey(k)) return true;
  }
  return false;
}

namespace {

// Reference backend: binary heap over 24-byte keys. O(log n) push/pop.
class HeapScheduler final : public Scheduler {
 public:
  const char* name() const override { return "heap"; }

 private:
  struct KeyGreater {
    bool operator()(const Key& a, const Key& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void Push(const Key& k) override { heap_.push(k); }

  bool PopMin(Key* k) override {
    if (heap_.empty()) return false;
    *k = heap_.top();
    heap_.pop();
    if (!heap_.empty()) PrefetchSlot(heap_.top().slot);
    return true;
  }

  std::priority_queue<Key, std::vector<Key>, KeyGreater> heap_;
};

}  // namespace

std::unique_ptr<Scheduler> MakeHeapScheduler() {
  return std::make_unique<HeapScheduler>();
}

std::unique_ptr<Scheduler> MakeScheduler(const std::string& backend) {
  if (backend == "calendar") return MakeCalendarScheduler();
  if (backend == "heap") return MakeHeapScheduler();
  HD_CHECK_MSG(false, "unknown DES backend '" << backend
                                              << "' (valid: " << kBackendNames
                                              << ")");
  return nullptr;  // unreachable; HD_CHECK_MSG throws
}

}  // namespace hd::des
