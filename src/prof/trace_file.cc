#include "prof/trace_file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hd::prof {

namespace {

constexpr double kMicrosPerSec = 1e6;

double NumberField(const json::Value& obj, std::string_view key,
                   double fallback) {
  const json::Value* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string StringField(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.Find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string();
}

}  // namespace

double TraceEvent::ArgNumber(std::string_view key, double fallback) const {
  if (!args.is_object()) return fallback;
  return NumberField(args, key, fallback);
}

std::string TraceEvent::ArgString(std::string_view key,
                                  std::string fallback) const {
  if (!args.is_object()) return fallback;
  const json::Value* v = args.Find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::move(fallback);
}

TraceFile TraceFile::Parse(std::string_view text) {
  const json::Value doc = json::Parse(text);
  const json::Value* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("not a Chrome trace: no traceEvents array");
  }
  TraceFile tf;
  for (const json::Value& ev : events->array) {
    if (!ev.is_object()) continue;
    const std::string ph = StringField(ev, "ph");
    const auto pid =
        static_cast<std::int32_t>(NumberField(ev, "pid", 0.0));
    const auto tid =
        static_cast<std::int32_t>(NumberField(ev, "tid", 0.0));
    const std::string name = StringField(ev, "name");
    if (ph == "M") {
      const json::Value* args = ev.Find("args");
      if (args == nullptr || !args->is_object()) continue;
      if (name == "process_name") {
        tf.process_names_.emplace(pid, StringField(*args, "name"));
      } else if (name == "thread_name") {
        tf.thread_names_.emplace(std::make_pair(pid, tid),
                                 StringField(*args, "name"));
      }
      // sort_index metadata only matters to viewers; skip.
      continue;
    }
    if (ph != "X" && ph != "i") continue;
    TraceEvent e;
    e.phase = ph[0];
    e.category = StringField(ev, "cat");
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.start_sec = NumberField(ev, "ts", 0.0) / kMicrosPerSec;
    if (ph == "X") e.dur_sec = NumberField(ev, "dur", 0.0) / kMicrosPerSec;
    if (const json::Value* args = ev.Find("args")) e.args = *args;
    tf.events_.push_back(std::move(e));
  }
  return tf;
}

TraceFile TraceFile::Load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw std::runtime_error("cannot read trace file '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return Parse(ss.str());
}

std::string TraceFile::ProcessName(std::int32_t pid) const {
  auto it = process_names_.find(pid);
  return it == process_names_.end() ? std::string() : it->second;
}

std::string TraceFile::ThreadName(std::int32_t pid, std::int32_t tid) const {
  auto it = thread_names_.find(std::make_pair(pid, tid));
  return it == thread_names_.end() ? std::string() : it->second;
}

}  // namespace hd::prof
