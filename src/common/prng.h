// Deterministic pseudo-random generation for workload synthesis.
//
// Every experiment in the repository must be bit-reproducible across
// machines, so we avoid std::mt19937 distribution differences and implement
// both the generator (xoshiro256**) and the samplers ourselves.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace hd {

// SplitMix64: used to seed xoshiro and as a cheap stateless hash.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    HD_CHECK(bound > 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box–Muller (deterministic; no cached spare to keep
  // the state trivially serialisable).
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793 * u2);
  }

  // Raw generator state, for checkpointing. Restoring the four words
  // reproduces the exact draw sequence from the capture point.
  std::array<std::uint64_t, 4> State() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// Zipf-distributed sampler over ranks [0, n); used for synthetic text
// corpora where word frequency follows a power law (as in the PUMA
// wikipedia inputs the paper uses).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    HD_CHECK(n > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t Sample(Prng& prng) const {
    const double u = prng.NextDouble();
    // Binary search the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace hd
