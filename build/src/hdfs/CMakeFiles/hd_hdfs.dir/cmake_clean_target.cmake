file(REMOVE_RECURSE
  "libhd_hdfs.a"
)
