file(REMOVE_RECURSE
  "CMakeFiles/seqfile_test.dir/seqfile_test.cc.o"
  "CMakeFiles/seqfile_test.dir/seqfile_test.cc.o.d"
  "seqfile_test"
  "seqfile_test.pdb"
  "seqfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
