// Device and CPU configurations for the analytic timing models.
//
// All experiment numbers in this repository are *modeled* times derived from
// operation and memory-transaction counts, so results are bit-reproducible.
// The constants below are calibrated so that the relative effects the paper
// reports (texture-cache wins, vectorised KV access, record stealing,
// aggregation-before-sort, CPU-vs-GPU task speedups between ~1.5x and ~47x)
// fall in the observed ranges; absolute seconds are not meaningful.
#pragma once

#include <cstdint>
#include <string>

namespace hd::gpusim {

struct DeviceConfig {
  std::string name;

  // Topology.
  int num_sms = 15;
  int warp_size = 32;
  // Warps whose latency an SM can overlap (occupancy-driven latency hiding).
  // Kepler SMX holds up to 64 resident warps.
  int max_resident_warps = 64;

  double core_clock_ghz = 0.745;

  // Memory capacities (bytes). GPU memory is non-virtual: exceeding it is a
  // hard allocation failure, exactly the constraint §1 of the paper builds
  // its per-record (rather than per-fileSplit) parallelisation around.
  std::int64_t global_mem_bytes = 12LL << 30;
  std::int64_t shared_mem_per_block = 48 << 10;

  // Per-operation pipeline costs (cycles, per warp-instruction).
  double cycles_int_alu = 1.0;
  double cycles_int_mul = 2.0;
  double cycles_int_div = 16.0;
  double cycles_float_alu = 1.0;
  double cycles_float_div = 10.0;
  double cycles_special = 4.0;   // sqrt/exp/log/erf via SFU
  double cycles_branch = 2.0;
  double cycles_call = 4.0;
  // Issue cost of one memory instruction (occupies the warp's issue slot
  // even when the data hits on chip): this is where SIMD divergence on
  // memory-heavy lanes costs time, and what record stealing rebalances.
  double cycles_mem_issue = 1.0;

  // Memory system (cycles).
  double global_latency = 400.0;       // DRAM transaction (L1/L2 miss)
  double l1_latency = 18.0;            // hit in the same 128-byte line
  double shared_latency = 4.0;         // per access
  double constant_latency = 2.0;       // broadcast hit
  double texture_hit_latency = 12.0;   // on-chip texture cache hit
  double atomic_shared = 12.0;         // per shared-memory atomic
  double atomic_global = 320.0;        // per global-memory atomic
  // Aggregate DRAM bandwidth in bytes per core cycle (device-wide).
  double dram_bytes_per_cycle = 300.0;
  // Texture cache: per-SM capacity in 128-byte lines.
  int texture_cache_lines = 384;
  int mem_line_bytes = 128;
  // Bytes a single lane can move per vectorised load/store instruction
  // (char4-style vector data types, §4.1).
  int vector_width_bytes = 4;

  // Host link (PCIe), bytes/second.
  double pcie_bytes_per_sec = 6.0e9;

  // Kernel launch fixed cost (seconds).
  double launch_overhead_sec = 8.0e-6;

  // Tesla K40 (Kepler) — Cluster1's device (Table 3).
  static DeviceConfig TeslaK40();
  // Tesla M2090 (Fermi) — Cluster2's device (Table 3).
  static DeviceConfig TeslaM2090();
};

// CPU-side model for a single core running the Hadoop Streaming filter
// through the interpreter ("gcc path").
struct CpuConfig {
  std::string name;
  double clock_ghz = 2.8;
  // Per-op costs (cycles). A superscalar core retires several abstract ops
  // per cycle, hence values < 1.
  double cycles_int_alu = 0.4;
  double cycles_int_mul = 1.0;
  double cycles_int_div = 8.0;
  double cycles_float_alu = 0.5;
  double cycles_float_div = 7.0;
  double cycles_special = 40.0;  // libm calls (erf/exp/log)
  double cycles_branch = 0.8;
  double cycles_call = 2.0;
  // Cache-friendly streaming memory access (cycles per element touched).
  double cycles_mem = 1.2;
  // Hadoop Streaming framework overhead on the CPU path: every record is
  // piped from the JVM into the filter process and every emitted KV pair
  // is piped back and re-serialised as Text. The GPU driver bypasses this
  // entirely (libHDFS input, direct SequenceFile output, §5.2).
  double streaming_cycles_per_record = 700.0;
  double streaming_cycles_per_kv = 350.0;

  // Intel Xeon E5-2680 v2 class (Cluster1, Table 3).
  static CpuConfig XeonE5_2680();
  // Intel Xeon X5560 (Cluster2, Table 3).
  static CpuConfig XeonX5560();
};

}  // namespace hd::gpusim
