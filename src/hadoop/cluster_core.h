// Cluster-level execution core shared by the single-job JobEngine and the
// multi-job engine (src/multijob).
//
// The split mirrors real Hadoop 1.x: the *cluster* owns the TaskTrackers
// (CPU/GPU map slots), the heartbeat clock and the DES event queue, while
// each *job* owns its pending map list, per-TaskTracker speedup statistics
// (Algorithm 2's aveSpeedup is tracked per job), reduce bookkeeping and
// result counters. N active jobs can therefore share one set of
// TaskTrackers; which job a freed slot serves is the caller's decision
// (trivially "the job" for JobEngine, an inter-job scheduler for
// multijob::MultiJobEngine).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpurt/kv.h"
#include "hadoop/des.h"
#include "hadoop/task_source.h"
#include "hdfs/hdfs.h"
#include "sched/policy.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hd::hadoop {

struct ClusterConfig {
  int num_slaves = 4;
  int map_slots_per_node = 4;    // CPU map slots (Table 3: 20 / 4)
  int reduce_slots_per_node = 2;
  int gpus_per_node = 0;
  double heartbeat_sec = 3.0;
  double network_bytes_per_sec = 1.0e9;  // shuffle / non-local reads
  double reduce_slowstart = 0.2;  // Table 3: 20% maps before reduce starts
  // Extension (paper §9 future work): inter-node heterogeneity. When
  // non-empty, entry i scales every task duration on node i (e.g. 2.0 =
  // an older node at half speed). Size must equal num_slaves.
  std::vector<double> node_speed_factors;
  // Optional schedule trace (one line per task start/finish), for debugging
  // and for the Fig. 3 bench's timeline rendering.
  std::ostream* trace = nullptr;
  // Structured observability (src/trace); null = off and bit-identical
  // modeled numbers. Timestamps are DES virtual seconds. Track layout:
  // pid trace_pid_base is the JobTracker (one lane per job id), pid
  // trace_pid_base+node+1 is cluster node `node` with tid 0 for
  // heartbeats/decisions, tids 1..map_slots_per_node its CPU map slots and
  // the next gpus_per_node tids its GPU slots. `trace_pid_base` lets
  // several engine runs (e.g. two scheduling policies over the same seed)
  // share one trace file on disjoint pid ranges.
  trace::Sink* sink = nullptr;
  trace::Registry* metrics = nullptr;
  int trace_pid_base = 0;
};

// HD_CHECKs every ClusterConfig invariant (positive slot/heartbeat/
// bandwidth values, slowstart fraction in [0,1], speed-factor arity).
// Called from the ClusterCore constructor; throws CheckError on violation.
void ValidateClusterConfig(const ClusterConfig& cfg);

struct JobResult {
  double makespan_sec = 0.0;
  double map_phase_end_sec = 0.0;
  std::int64_t cpu_tasks = 0;
  std::int64_t gpu_tasks = 0;
  std::int64_t gpu_failures = 0;
  std::int64_t nonlocal_tasks = 0;
  std::int64_t total_map_output_bytes = 0;
  double max_observed_speedup = 1.0;
  // Functional sources only: the job's final output (reduce output, or map
  // output for map-only jobs).
  std::vector<gpurt::KvPair> final_output;
};

// Per-(job, TaskTracker) speedup bookkeeping: Algorithm 2's aveSpeedup,
// tracked per job because different jobs see different GPU speedups.
struct JobNodeStats {
  double cpu_avg = 0.0;
  std::int64_t cpu_n = 0;
  double gpu_avg = 0.0;
  std::int64_t gpu_n = 0;

  double AveSpeedup() const {
    if (cpu_n == 0 || gpu_n == 0 || gpu_avg <= 0.0) return 1.0;
    return cpu_avg / gpu_avg;
  }
};

// Everything belonging to one MapReduce job in flight.
struct JobState {
  int id = 0;
  std::string label;  // app/bench id for traces and metrics
  TaskTimeSource* source = nullptr;
  sched::Policy policy = sched::Policy::kCpuOnly;
  const hdfs::Hdfs* fs = nullptr;
  std::string input_path;
  int pool = 0;  // multijob Capacity scheduler pool

  std::vector<int> pending;    // unscheduled map task ids (FIFO)
  int remaining_maps = 0;      // scheduled-or-pending, not yet finished
  int maps_done = 0;
  int running_tasks = 0;       // currently occupying a slot (Fair shares)
  double max_speedup = 1.0;
  std::vector<JobNodeStats> node_stats;  // one per slave
  bool reduces_scheduled = false;
  std::vector<double> reduce_start;
  bool done = false;
  bool tail_onset_traced = false;  // first forced-GPU decision emitted

  double submit_time = 0.0;
  double first_start_time = -1.0;  // <0 until the first task launches
  JobResult result;
};

// Free map slots of one TaskTracker. Cluster state: shared by all jobs.
struct NodeSlots {
  int free_cpu = 0;
  int free_gpu = 0;
};

// Owns the cluster (nodes, slots, DES clock) and implements the map-task
// placement/execution machinery for any JobState. Subclasses decide which
// job each heartbeat serves and react to completions via the hooks.
class ClusterCore {
 public:
  explicit ClusterCore(ClusterConfig cfg);
  virtual ~ClusterCore() = default;

 protected:
  // Validates the job against the cluster and fills in the derived fields
  // (pending list, per-node stats). Call once before scheduling it.
  void InitJob(JobState& job);

  // The sched::Policy view of `node_id` as seen by `job`: cluster slot
  // availability plus the job's own speedup estimate. A kCpuOnly job sees
  // zero GPUs even when the node has some (baseline Hadoop is GPU-blind).
  sched::NodeSched SchedView(const JobState& job, int node_id) const;

  // Algorithm 2's JobTracker side: how many tasks this job may receive
  // from `node_id` in the current heartbeat response.
  int HeartbeatCap(const JobState& job, int node_id) const;

  // Whether `node_id` has any slot this job could occupy right now.
  bool NodeHasUsableSlot(const JobState& job, int node_id) const;

  // Picks up to `max_tasks` pending tasks, preferring node-local splits.
  std::vector<int> PickTasks(JobState& job, int node_id, int max_tasks);
  bool IsLocal(const JobState& job, int node_id, int task) const;

  void PlaceTask(JobState& job, int node_id, int task,
                 double maps_remaining_per_node);
  void StartMap(JobState& job, int node_id, int task, bool on_gpu);
  void FinishMap(JobState& job, int node_id, int task, bool on_gpu,
                 double duration, int lane);
  void OnMapsProgress(JobState& job);
  void FinishJob(JobState& job);

  // Trace helpers (no-ops when cfg_.sink is null). NodeTrack is lane `tid`
  // of cluster node `node_id` under the layout documented on ClusterConfig;
  // JobTrack is the job's JobTracker lane. EmitHeartbeat is called by the
  // engines' heartbeat handlers.
  trace::Track NodeTrack(int node_id, int tid) const {
    return trace::Track{cfg_.trace_pid_base + node_id + 1, tid};
  }
  trace::Track JobTrack(const JobState& job) const {
    return trace::Track{cfg_.trace_pid_base, job.id};
  }
  void EmitHeartbeat(int node_id);

  // Called after each map completion (slot freed; Hadoop 1.x sends an
  // out-of-band heartbeat here) and after a job's last map completes.
  virtual void OnTaskFinished(JobState& job, int node_id) = 0;
  virtual void OnJobFinished(JobState& job) { (void)job; }

  ClusterConfig cfg_;
  EventQueue events_;
  std::vector<NodeSlots> nodes_;
  bool trace_job_ids_ = false;  // multijob traces tag lines with job=<id>

  // Per-node free trace lanes (tids), maintained only when cfg_.sink is
  // set; a running task holds its lane from StartMap to FinishMap so
  // overlapping tasks render on distinct rows.
  std::vector<std::vector<int>> free_cpu_lanes_;
  std::vector<std::vector<int>> free_gpu_lanes_;

  // Cluster-level accounting for utilization / contention metrics.
  double cpu_busy_sec_ = 0.0;   // map-slot-seconds spent on CPU tasks
  double gpu_busy_sec_ = 0.0;   // GPU-slot-seconds spent on GPU tasks
  std::int64_t gpu_bounces_ = 0;  // forced-GPU placements, every GPU busy
};

}  // namespace hd::hadoop
