// Elastic HA serving: checkpointed warm restart, runtime cluster resize
// and preemptive multi-tenant quotas.
//
// The headline contract under test: a same-seed run killed at ANY
// checkpoint boundary and restored into a fresh engine produces
// byte-identical final output and metrics — exact-double comparisons
// throughout, never tolerances. The sweep exercises every captured
// boundary of a workload that mixes membership churn, quota preemption
// and (separately) fault injection, plus the streaming service.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/benchmark.h"
#include "common/check.h"
#include "fault/fault.h"
#include "gpurt/job_program.h"
#include "hadoop/checkpoint.h"
#include "hadoop/cluster_core.h"
#include "hadoop/functional_source.h"
#include "hadoop/task_source.h"
#include "multijob/engine.h"
#include "multijob/metrics.h"
#include "multijob/scheduler.h"
#include "stream/engine.h"
#include "stream/pipeline.h"

namespace hd {
namespace {

using hadoop::CalibratedTaskSource;
using hadoop::CheckpointError;
using hadoop::ClusterConfig;
using multijob::JobSpec;
using multijob::JobStats;
using multijob::MakeCapacityScheduler;
using multijob::MakeFairScheduler;
using multijob::MakeFifoScheduler;
using multijob::MakeSloScheduler;
using multijob::MultiJobEngine;
using multijob::WorkloadMetrics;
using sched::Policy;

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  return c;
}

CalibratedTaskSource::Params CalibParams(int maps, double cpu_sec,
                                         std::uint64_t seed) {
  CalibratedTaskSource::Params p;
  p.num_maps = maps;
  p.num_reducers = 2;
  p.cpu_task_sec = cpu_sec;
  p.gpu_task_sec = 2.0;
  p.variation = 0.3;  // seeded per-task jitter: boundaries land mid-attempt
  p.seed = seed;
  p.reduce_sec = 1.0;
  return p;
}

// Byte-identical workload comparison: every modeled number is an exact
// double, so EXPECT_EQ (no tolerance) is the assertion of record.
void ExpectSameWorkload(const WorkloadMetrics& a, const WorkloadMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobStats& x = a.jobs[i];
    const JobStats& y = b.jobs[i];
    EXPECT_EQ(x.job_id, y.job_id);
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.submit_sec, y.submit_sec) << "job " << x.job_id;
    EXPECT_EQ(x.start_sec, y.start_sec) << "job " << x.job_id;
    EXPECT_EQ(x.finish_sec, y.finish_sec) << "job " << x.job_id;
    EXPECT_EQ(x.result.cpu_tasks, y.result.cpu_tasks) << "job " << x.job_id;
    EXPECT_EQ(x.result.gpu_tasks, y.result.gpu_tasks) << "job " << x.job_id;
    EXPECT_EQ(x.result.task_failures, y.result.task_failures);
    EXPECT_EQ(x.result.task_retries, y.result.task_retries);
    EXPECT_EQ(x.result.killed_attempts, y.result.killed_attempts);
    EXPECT_EQ(x.result.maps_reexecuted, y.result.maps_reexecuted);
    EXPECT_EQ(x.result.preempted_attempts, y.result.preempted_attempts);
    EXPECT_EQ(x.result.final_output, y.result.final_output);
  }
  EXPECT_EQ(a.makespan_sec, b.makespan_sec);
  EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.gpu_bounces, b.gpu_bounces);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.nodes_crashed, b.nodes_crashed);
  EXPECT_EQ(a.nodes_recovered, b.nodes_recovered);
  EXPECT_EQ(a.nodes_lost, b.nodes_lost);
  EXPECT_EQ(a.heartbeats_dropped, b.heartbeats_dropped);
  EXPECT_EQ(a.nodes_joined, b.nodes_joined);
  EXPECT_EQ(a.nodes_left, b.nodes_left);
  EXPECT_EQ(a.leaves_refused, b.leaves_refused);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

// The churn workload: four staggered two-pool jobs on a cluster that
// gains one tracker, drains another and hard-kills a third mid-run, with
// quota preemption armed. One deterministic scenario covering all three
// tentpole legs at once. `restore_text` null runs it from scratch;
// `capture` non-null collects every checkpoint written.
WorkloadMetrics RunChurnScenario(ClusterConfig cfg,
                                 const std::string* restore_text,
                                 std::vector<std::string>* capture) {
  cfg.checkpoint_interval_sec = 7.3;  // off the 3 s heartbeat grid
  cfg.preemption_budget = 2;
  if (capture != nullptr) {
    cfg.on_checkpoint = [capture](int, const std::string& text) {
      capture->push_back(text);
    };
  }
  MultiJobEngine eng(cfg, MakeCapacityScheduler({3.0, 1.0}));
  // The membership plan must be re-scheduled identically before a
  // restore; the overlay then cancels the entries that already fired.
  eng.ScheduleJoin(12.0);
  eng.ScheduleLeave(30.0, 1, /*drain=*/true);
  eng.ScheduleLeave(45.0, 2, /*drain=*/false);

  std::vector<std::unique_ptr<CalibratedTaskSource>> keep;
  const int maps[] = {24, 32, 16, 24};
  const double cpu[] = {9.0, 12.0, 7.0, 10.0};
  const double submit[] = {0.0, 5.0, 9.0, 13.0};
  const Policy pol[] = {Policy::kTail, Policy::kCpuOnly, Policy::kGpuFirst,
                        Policy::kTail};
  for (int j = 0; j < 4; ++j) {
    keep.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(maps[j], cpu[j], 11 + static_cast<std::uint64_t>(j))));
    JobSpec spec;
    spec.source = keep.back().get();
    spec.policy = pol[j];
    spec.pool = j % 2;
    spec.label = "churn" + std::to_string(j);
    eng.Submit(submit[j], spec);
  }
  if (restore_text != nullptr) eng.RestoreFromText(*restore_text);
  return eng.Run();
}

TEST(Checkpoint, KillAtEveryBoundaryRestoresByteIdentical) {
  std::vector<std::string> ckpts;
  const WorkloadMetrics base =
      RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_EQ(base.jobs.size(), 4u);
  EXPECT_EQ(base.nodes_joined, 1);
  EXPECT_EQ(base.nodes_left, 2);
  ASSERT_GE(ckpts.size(), 3u) << "scenario too short to exercise the sweep";
  // Kill at every boundary: a fresh engine restored from checkpoint k
  // must finish with the exact metrics of the uninterrupted run.
  for (std::size_t k = 0; k < ckpts.size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k + 1));
    const WorkloadMetrics restored =
        RunChurnScenario(SmallCluster(), &ckpts[k], nullptr);
    ExpectSameWorkload(base, restored);
  }
}

TEST(Checkpoint, WritingSnapshotsDoesNotPerturbModeledNumbers) {
  // The checkpoint writer only reads modeled state: the same workload with
  // the cadence off must produce the exact numbers of the captured run.
  std::vector<std::string> ckpts;
  const WorkloadMetrics with = RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_FALSE(ckpts.empty());

  // Same scenario minus any checkpoint machinery (interval 0, no hook;
  // preemption stays on to keep the modeled run identical).
  ClusterConfig off = SmallCluster();
  off.preemption_budget = 2;
  MultiJobEngine eng2(off, MakeCapacityScheduler({3.0, 1.0}));
  eng2.ScheduleJoin(12.0);
  eng2.ScheduleLeave(30.0, 1, true);
  eng2.ScheduleLeave(45.0, 2, false);
  std::vector<std::unique_ptr<CalibratedTaskSource>> keep;
  const int maps[] = {24, 32, 16, 24};
  const double cpu[] = {9.0, 12.0, 7.0, 10.0};
  const double submit[] = {0.0, 5.0, 9.0, 13.0};
  const Policy pol[] = {Policy::kTail, Policy::kCpuOnly, Policy::kGpuFirst,
                        Policy::kTail};
  for (int j = 0; j < 4; ++j) {
    keep.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(maps[j], cpu[j], 11 + static_cast<std::uint64_t>(j))));
    JobSpec spec;
    spec.source = keep.back().get();
    spec.policy = pol[j];
    spec.pool = j % 2;
    spec.label = "churn" + std::to_string(j);
    eng2.Submit(submit[j], spec);
  }
  ExpectSameWorkload(with, eng2.Run());
}

TEST(Checkpoint, StopAtCheckpointHaltsAndFileRestoreContinues) {
  const std::string path = ::testing::TempDir() + "/heterodoop_ha_test.ckpt";
  std::vector<std::string> ckpts;
  const WorkloadMetrics base =
      RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_GE(ckpts.size(), 2u);

  // The SIGKILL stand-in: halt right after checkpoint 2 hits disk.
  ClusterConfig cfg = SmallCluster();
  cfg.checkpoint_path = path;
  cfg.stop_at_checkpoint = 2;
  {
    cfg.checkpoint_interval_sec = 7.3;
    cfg.preemption_budget = 2;
    MultiJobEngine eng(cfg, MakeCapacityScheduler({3.0, 1.0}));
    eng.ScheduleJoin(12.0);
    eng.ScheduleLeave(30.0, 1, true);
    eng.ScheduleLeave(45.0, 2, false);
    std::vector<std::unique_ptr<CalibratedTaskSource>> keep;
    const int maps[] = {24, 32, 16, 24};
    const double cpu[] = {9.0, 12.0, 7.0, 10.0};
    const double submit[] = {0.0, 5.0, 9.0, 13.0};
    const Policy pol[] = {Policy::kTail, Policy::kCpuOnly, Policy::kGpuFirst,
                          Policy::kTail};
    for (int j = 0; j < 4; ++j) {
      keep.push_back(std::make_unique<CalibratedTaskSource>(
          CalibParams(maps[j], cpu[j], 11 + static_cast<std::uint64_t>(j))));
      JobSpec spec;
      spec.source = keep.back().get();
      spec.policy = pol[j];
      spec.pool = j % 2;
      spec.label = "churn" + std::to_string(j);
      eng.Submit(submit[j], spec);
    }
    const WorkloadMetrics partial = eng.Run();
    EXPECT_TRUE(eng.halted());
    EXPECT_EQ(eng.checkpoint_seq(), 2);
    // The halt froze the run mid-flight: not everything completed.
    EXPECT_LT(partial.jobs.size(), base.jobs.size());
  }
  // Warm restart from the file the killed run left behind.
  const std::string on_disk = hadoop::ckpt::ReadFile(path);
  EXPECT_EQ(on_disk, ckpts[1]);  // same boundary => same bytes
  const WorkloadMetrics restored =
      RunChurnScenario(SmallCluster(), &on_disk, nullptr);
  ExpectSameWorkload(base, restored);
  std::remove(path.c_str());
}

TEST(Checkpoint, FaultedRunRestoresByteIdentical) {
  // Crash/recovery state (outages, lost trackers, pending recoveries,
  // requeued tasks) must survive the snapshot too. The injector's plan is
  // deterministic, and ScheduleFaultPlan skips crashes at or before the
  // restore point — they already happened inside the checkpoint.
  fault::FaultSpec fs;
  fs.seed = 7;
  fs.crash_mttf_sec = 220.0;
  fs.restart_sec = 25.0;
  fs.permanent_fraction = 0.0;
  fs.horizon_sec = 600.0;
  const fault::FaultInjector inj(fs);

  auto run = [&inj](const std::string* restore_text,
                    std::vector<std::string>* capture) {
    ClusterConfig cfg = SmallCluster();
    cfg.faults = &inj;
    cfg.checkpoint_interval_sec = 11.7;
    if (capture != nullptr) {
      cfg.on_checkpoint = [capture](int, const std::string& text) {
        capture->push_back(text);
      };
    }
    MultiJobEngine eng(cfg, MakeFifoScheduler());
    std::vector<std::unique_ptr<CalibratedTaskSource>> keep;
    for (int j = 0; j < 3; ++j) {
      keep.push_back(std::make_unique<CalibratedTaskSource>(
          CalibParams(32, 10.0, 100 + static_cast<std::uint64_t>(j))));
      JobSpec spec;
      spec.source = keep.back().get();
      spec.policy = Policy::kTail;
      spec.label = "faulted" + std::to_string(j);
      eng.Submit(8.0 * j, spec);
    }
    if (restore_text != nullptr) eng.RestoreFromText(*restore_text);
    return eng.Run();
  };

  std::vector<std::string> ckpts;
  const WorkloadMetrics base = run(nullptr, &ckpts);
  ASSERT_GE(ckpts.size(), 2u);
  for (std::size_t k = 0; k < ckpts.size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k + 1));
    ExpectSameWorkload(base, run(&ckpts[k], nullptr));
  }
}

TEST(Checkpoint, FunctionalOutputIdenticalAcrossWarmRestart) {
  // Real map/reduce programs: the restored run must emit byte-identical
  // final KV output, not just matching timings — committed work is never
  // redone, uncommitted attempts replay to the same answers.
  const std::vector<std::string> ids = {"WC", "GR"};
  ClusterConfig cfg;
  cfg.num_slaves = 2;
  cfg.map_slots_per_node = 2;
  cfg.gpus_per_node = 1;
  cfg.heartbeat_sec = 0.01;

  std::vector<gpurt::JobProgram> programs;
  std::vector<std::vector<std::string>> split_sets;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const apps::Benchmark& b = apps::GetBenchmark(ids[i]);
    programs.push_back(
        gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source));
    std::vector<std::string> splits;
    for (int s = 0; s < 4; ++s) {
      splits.push_back(b.generate(1200, /*seed=*/100 * (i + 1) + s));
    }
    split_sets.push_back(std::move(splits));
  }
  hadoop::FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 1;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;

  auto run = [&](double interval, const std::string* restore_text,
                 std::vector<std::string>* capture) {
    ClusterConfig c = cfg;
    c.checkpoint_interval_sec = interval;
    if (capture != nullptr) {
      c.on_checkpoint = [capture](int, const std::string& text) {
        capture->push_back(text);
      };
    }
    MultiJobEngine eng(c, MakeFifoScheduler());
    std::vector<std::unique_ptr<hadoop::FunctionalTaskSource>> sources;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      sources.push_back(std::make_unique<hadoop::FunctionalTaskSource>(
          programs[i], split_sets[i], fopts));
      JobSpec spec;
      spec.source = sources.back().get();
      spec.policy = Policy::kGpuFirst;
      spec.label = ids[i];
      eng.Submit(0.0, spec);
    }
    if (restore_text != nullptr) eng.RestoreFromText(*restore_text);
    return eng.Run();
  };

  // Pass 1 sizes the cadence off the real makespan so boundaries land
  // mid-flight; pass 2 captures them; pass 3 sweeps every boundary.
  const WorkloadMetrics plain = run(0.0, nullptr, nullptr);
  ASSERT_EQ(plain.jobs.size(), ids.size());
  const double interval = plain.makespan_sec * 0.23;
  ASSERT_GT(interval, 0.0);
  std::vector<std::string> ckpts;
  const WorkloadMetrics base = run(interval, nullptr, &ckpts);
  ExpectSameWorkload(plain, base);  // the writer perturbed nothing
  ASSERT_GE(ckpts.size(), 2u);
  for (std::size_t k = 0; k < ckpts.size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k + 1));
    const WorkloadMetrics restored = run(interval, &ckpts[k], nullptr);
    ExpectSameWorkload(base, restored);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(restored.jobs[i].result.final_output,
                plain.jobs[i].result.final_output)
          << ids[i];
    }
  }
}

// --- streaming service -----------------------------------------------------

stream::PipelineSpec ClicksPipeline() {
  stream::PipelineSpec clicks;
  clicks.label = "clicks";
  clicks.source.mean_rate_per_sec = 2.0;
  clicks.source.seed = 42;
  clicks.trigger.count = 12;
  clicks.trigger.span_sec = 8.0;
  clicks.slo_sec = 25.0;
  return clicks;
}

stream::PipelineSpec LogsPipeline() {
  stream::PipelineSpec logs;
  logs.label = "logs";
  logs.source.shape = stream::RateShape::kBursty;
  logs.source.mean_rate_per_sec = 1.0;
  logs.source.seed = 43;
  logs.trigger.count = 16;
  logs.trigger.span_sec = 12.0;
  logs.backpressure = stream::Backpressure::kShed;
  return logs;
}

stream::StreamMetrics RunStreamScenario(const std::string* restore_text,
                                        std::vector<std::string>* capture) {
  ClusterConfig cfg = SmallCluster();
  cfg.checkpoint_interval_sec = 7.3;
  if (capture != nullptr) {
    cfg.on_checkpoint = [capture](int, const std::string& text) {
      capture->push_back(text);
    };
  }
  stream::StreamEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
  eng.AddPipeline(ClicksPipeline());
  eng.AddPipeline(LogsPipeline());
  if (restore_text != nullptr) eng.RestoreFromText(*restore_text);
  return eng.RunStream(120.0, 30.0);
}

void ExpectSameStream(const stream::StreamMetrics& a,
                      const stream::StreamMetrics& b) {
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    const stream::PipelineMetrics& x = a.pipelines[i];
    const stream::PipelineMetrics& y = b.pipelines[i];
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.records_arrived, y.records_arrived) << x.label;
    EXPECT_EQ(x.records_processed, y.records_processed) << x.label;
    EXPECT_EQ(x.records_shed, y.records_shed) << x.label;
    EXPECT_EQ(x.windows_sealed, y.windows_sealed) << x.label;
    EXPECT_EQ(x.windows_empty, y.windows_empty) << x.label;
    EXPECT_EQ(x.windows_shed, y.windows_shed) << x.label;
    EXPECT_EQ(x.windows_completed, y.windows_completed) << x.label;
    EXPECT_EQ(x.seals_by_count, y.seals_by_count) << x.label;
    EXPECT_EQ(x.seals_by_time, y.seals_by_time) << x.label;
    EXPECT_EQ(x.slo_violations, y.slo_violations) << x.label;
    EXPECT_EQ(x.latencies_sec, y.latencies_sec) << x.label;
    EXPECT_EQ(x.watermark_lags_sec, y.watermark_lags_sec) << x.label;
    EXPECT_EQ(x.queue_depths, y.queue_depths) << x.label;
    EXPECT_EQ(x.backlog_at_horizon, y.backlog_at_horizon) << x.label;
    EXPECT_EQ(x.max_queue_depth, y.max_queue_depth) << x.label;
    EXPECT_EQ(x.stable, y.stable) << x.label;
    EXPECT_EQ(x.depth_growth, y.depth_growth) << x.label;
  }
  ASSERT_EQ(a.workload.jobs.size(), b.workload.jobs.size());
  for (std::size_t i = 0; i < a.workload.jobs.size(); ++i) {
    EXPECT_EQ(a.workload.jobs[i].finish_sec, b.workload.jobs[i].finish_sec);
  }
  EXPECT_EQ(a.workload.makespan_sec, b.workload.makespan_sec);
}

TEST(Checkpoint, StreamServiceRestoresBitIdentical) {
  // The stream section carries window frontiers, source generator states,
  // pending/inflight windows and the watermark: a service killed at any
  // boundary and re-armed finishes window-for-window identical.
  std::vector<std::string> ckpts;
  const stream::StreamMetrics base = RunStreamScenario(nullptr, &ckpts);
  ASSERT_EQ(base.pipelines.size(), 2u);
  EXPECT_GT(base.pipelines[0].windows_completed, 0);
  ASSERT_GE(ckpts.size(), 5u);
  for (std::size_t k = 0; k < ckpts.size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k + 1));
    const stream::StreamMetrics restored = RunStreamScenario(&ckpts[k], nullptr);
    ExpectSameStream(base, restored);
  }
}

// --- rejection of bad snapshots --------------------------------------------

TEST(Checkpoint, RejectsCorruptAndTruncatedSnapshots) {
  std::vector<std::string> ckpts;
  RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_FALSE(ckpts.empty());
  const std::string& good = ckpts.back();

  // Fresh engines with the scenario's membership plan re-scheduled (the
  // cluster overlay verifies it) but the jobs NOT re-submitted.
  auto fresh = [] {
    auto eng = std::make_unique<MultiJobEngine>(
        SmallCluster(), MakeCapacityScheduler({3.0, 1.0}));
    eng->ScheduleJoin(12.0);
    eng->ScheduleLeave(30.0, 1, true);
    eng->ScheduleLeave(45.0, 2, false);
    return eng;
  };
  // Not JSON at all.
  EXPECT_THROW(fresh()->RestoreFromText("this is not a checkpoint"),
               CheckpointError);
  // Truncated mid-document (torn write).
  EXPECT_THROW(fresh()->RestoreFromText(good.substr(0, good.size() / 2)),
               CheckpointError);
  // Valid JSON, wrong schema tag.
  EXPECT_THROW(fresh()->RestoreFromText("{\"schema\": \"heterodoop.ckpt.v9\"}"),
               CheckpointError);
  // Structurally valid but the workload was never re-submitted.
  try {
    fresh()->RestoreFromText(good);
    FAIL() << "restore without re-submitted jobs accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("re-submitted"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RejectsMismatchedConfigurationListingEveryDifference) {
  std::vector<std::string> ckpts;
  RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_FALSE(ckpts.empty());

  ClusterConfig other = SmallCluster();
  other.num_slaves = 5;
  other.gpus_per_node = 0;
  MultiJobEngine eng(other, MakeCapacityScheduler({3.0, 1.0}));
  try {
    eng.RestoreFromText(ckpts.front());
    FAIL() << "cross-configuration restore accepted";
  } catch (const CheckpointError& e) {
    const std::string msg = e.what();
    // Collect-all reporting: both differences in one error.
    EXPECT_NE(msg.find("2 mismatches"), std::string::npos) << msg;
    EXPECT_NE(msg.find("num_slaves"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gpus"), std::string::npos) << msg;
  }
}

TEST(Checkpoint, RejectsRestoreIntoARunEngine) {
  std::vector<std::string> ckpts;
  RunChurnScenario(SmallCluster(), nullptr, &ckpts);
  ASSERT_FALSE(ckpts.empty());

  MultiJobEngine eng(SmallCluster(), MakeFifoScheduler());
  CalibratedTaskSource src(CalibParams(8, 5.0, 1));
  JobSpec spec;
  spec.source = &src;
  spec.policy = Policy::kTail;
  eng.Submit(0.0, spec);
  eng.Run();
  // Overlaying a snapshot onto consumed state would corrupt silently;
  // the fresh-engine invariant refuses it outright.
  EXPECT_THROW(eng.RestoreFromText(ckpts.front()), CheckError);
}

TEST(Checkpoint, RejectsBatchStreamShapeMismatches) {
  // A batch snapshot into a pipelined engine... (the batch run uses the
  // same 'slo' scheduler so the shape mismatch is the first difference,
  // not the config fingerprint).
  std::vector<std::string> batch_ckpts;
  {
    ClusterConfig cfg = SmallCluster();
    cfg.checkpoint_interval_sec = 7.3;
    cfg.on_checkpoint = [&batch_ckpts](int, const std::string& text) {
      batch_ckpts.push_back(text);
    };
    MultiJobEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
    CalibratedTaskSource src(CalibParams(32, 10.0, 9));
    JobSpec spec;
    spec.source = &src;
    spec.policy = Policy::kTail;
    eng.Submit(0.0, spec);
    eng.Run();
  }
  ASSERT_FALSE(batch_ckpts.empty());
  {
    ClusterConfig cfg = SmallCluster();
    stream::StreamEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
    eng.AddPipeline(ClicksPipeline());
    try {
      eng.RestoreFromText(batch_ckpts.front());
      FAIL() << "batch snapshot accepted by a pipelined engine";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("batch-only"), std::string::npos)
          << e.what();
    }
  }
  // ...and a stream snapshot into an engine with no pipelines registered.
  std::vector<std::string> stream_ckpts;
  RunStreamScenario(nullptr, &stream_ckpts);
  ASSERT_FALSE(stream_ckpts.empty());
  {
    ClusterConfig cfg = SmallCluster();
    stream::StreamEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
    try {
      eng.RestoreFromText(stream_ckpts.front());
      FAIL() << "stream snapshot accepted without its pipelines";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("AddPipeline"), std::string::npos)
          << e.what();
    }
  }
}

// --- runtime resize ---------------------------------------------------------

TEST(Resize, JoinExpandsCapacityMidRun) {
  auto run = [](bool join) {
    ClusterConfig c;
    c.num_slaves = 2;
    c.map_slots_per_node = 2;
    c.gpus_per_node = 0;
    MultiJobEngine eng(c, MakeFifoScheduler());
    if (join) eng.ScheduleJoin(6.0);
    CalibratedTaskSource src(CalibParams(32, 10.0, 3));
    JobSpec spec;
    spec.source = &src;
    spec.policy = Policy::kCpuOnly;
    eng.Submit(0.0, spec);
    return eng.Run();
  };
  const WorkloadMetrics grown = run(true);
  const WorkloadMetrics fixed = run(false);
  EXPECT_EQ(grown.nodes_joined, 1);
  EXPECT_EQ(fixed.nodes_joined, 0);
  // The joined tracker took real work off the original two.
  EXPECT_LT(grown.makespan_sec, fixed.makespan_sec);
  EXPECT_EQ(grown.jobs[0].result.cpu_tasks, 32);
  // No outage anywhere: partial-capacity intervals are availability-neutral
  // because the denominator only counts registered node-seconds.
  EXPECT_EQ(grown.availability, 1.0);
}

TEST(Resize, DrainLeaveFinishesRunningAttempts) {
  ClusterConfig c;
  c.num_slaves = 3;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 0;
  MultiJobEngine eng(c, MakeFifoScheduler());
  eng.ScheduleLeave(12.0, 2, /*drain=*/true);
  CalibratedTaskSource src(CalibParams(30, 10.0, 4));
  JobSpec spec;
  spec.source = &src;
  spec.policy = Policy::kCpuOnly;
  eng.Submit(0.0, spec);
  const WorkloadMetrics m = eng.Run();
  EXPECT_EQ(m.nodes_left, 1);
  EXPECT_EQ(eng.registered_nodes(), 2);
  // Draining is graceful: nothing was killed, nothing re-executed.
  EXPECT_EQ(m.jobs[0].result.killed_attempts, 0);
  EXPECT_EQ(m.jobs[0].result.maps_reexecuted, 0);
  EXPECT_EQ(m.jobs[0].result.cpu_tasks, 30);
  EXPECT_EQ(m.availability, 1.0);
}

TEST(Resize, HardLeaveKillsAttemptsAndRecoversExactlyOnce) {
  ClusterConfig c;
  c.num_slaves = 3;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 0;
  MultiJobEngine eng(c, MakeFifoScheduler());
  eng.ScheduleLeave(12.0, 2, /*drain=*/false);
  CalibratedTaskSource src(CalibParams(30, 10.0, 4));
  JobSpec spec;
  spec.source = &src;
  spec.policy = Policy::kCpuOnly;
  eng.Submit(0.0, spec);
  const WorkloadMetrics m = eng.Run();
  EXPECT_EQ(m.nodes_left, 1);
  // The departing tracker's running attempts died with it...
  EXPECT_GT(m.jobs[0].result.killed_attempts, 0);
  // ...and every task still committed exactly once. cpu_tasks counts
  // launches, so the extras are one relaunch per killed attempt plus the
  // re-runs of committed outputs the departed tracker's disk took with it.
  EXPECT_EQ(m.jobs[0].result.cpu_tasks,
            30 + m.jobs[0].result.killed_attempts +
                m.jobs[0].result.maps_reexecuted);
}

TEST(Resize, FloorRefusesDrainingTheLastTrackers) {
  ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 0;
  c.min_tracker_floor = 2;
  MultiJobEngine eng(c, MakeFifoScheduler());
  eng.ScheduleLeave(5.0, 1, /*drain=*/true);
  CalibratedTaskSource src(CalibParams(16, 8.0, 5));
  JobSpec spec;
  spec.source = &src;
  spec.policy = Policy::kCpuOnly;
  eng.Submit(0.0, spec);
  const WorkloadMetrics m = eng.Run();
  EXPECT_EQ(m.leaves_refused, 1);
  EXPECT_EQ(m.nodes_left, 0);
  EXPECT_EQ(eng.registered_nodes(), 2);
}

// --- preemptive quotas ------------------------------------------------------

TEST(Preemption, QuotaKillsOverQuotaAttemptsWithinBudget) {
  // A light-pool job grabs the whole cluster; when the heavy pool's job
  // arrives, preemption claws slots back instead of waiting for natural
  // completions — bounded by the per-job budget.
  auto run = [](int budget) {
    ClusterConfig c;
    c.num_slaves = 2;
    c.map_slots_per_node = 4;
    c.gpus_per_node = 0;
    c.preemption_budget = budget;
    MultiJobEngine eng(c, MakeCapacityScheduler({3.0, 1.0}));
    std::vector<std::unique_ptr<CalibratedTaskSource>> keep;
    keep.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(40, 30.0, 6)));
    JobSpec light;
    light.source = keep.back().get();
    light.policy = Policy::kCpuOnly;
    light.pool = 1;
    eng.Submit(0.0, light);
    keep.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(24, 10.0, 7)));
    JobSpec heavy;
    heavy.source = keep.back().get();
    heavy.policy = Policy::kCpuOnly;
    heavy.pool = 0;
    eng.Submit(6.0, heavy);
    return eng.Run();
  };
  const WorkloadMetrics with = run(2);
  const WorkloadMetrics without = run(0);
  EXPECT_EQ(without.preemptions, 0);
  ASSERT_GT(with.preemptions, 0);
  EXPECT_EQ(with.preemptions, with.TotalPreemptedAttempts());
  // The anti-livelock bound: one victim job, at most `budget` kills.
  EXPECT_LE(with.jobs[0].result.preempted_attempts, 2);
  // The starved heavy-pool job got its slots back sooner.
  EXPECT_LT(with.jobs[1].finish_sec, without.jobs[1].finish_sec);
  // Preempted tasks were requeued and still committed exactly once each:
  // launches = 40 maps + one relaunch per preempted attempt.
  EXPECT_EQ(with.jobs[0].result.cpu_tasks,
            40 + with.jobs[0].result.preempted_attempts);
  EXPECT_EQ(with.jobs[1].result.cpu_tasks, 24);
}

TEST(Preemption, NoStarvationMeansNoKills) {
  // Budget armed but a single tenant: the quota check never finds a
  // starved pool, so the engine must behave exactly like budget 0.
  auto run = [](int budget) {
    ClusterConfig c = SmallCluster();
    c.preemption_budget = budget;
    MultiJobEngine eng(c, MakeCapacityScheduler({3.0, 1.0}));
    CalibratedTaskSource src(CalibParams(32, 10.0, 8));
    JobSpec spec;
    spec.source = &src;
    spec.policy = Policy::kTail;
    eng.Submit(0.0, spec);
    return eng.Run();
  };
  const WorkloadMetrics armed = run(3);
  const WorkloadMetrics off = run(0);
  EXPECT_EQ(armed.preemptions, 0);
  ExpectSameWorkload(armed, off);
}

// --- ClusterConfig validation of the elastic knobs --------------------------

TEST(HaConfig, ValidationRejectsBadElasticKnobs) {
  auto reject = [](void (*mutate)(ClusterConfig&)) {
    ClusterConfig c = SmallCluster();
    mutate(c);
    EXPECT_THROW(hadoop::ValidateClusterConfig(c), CheckError);
  };
  reject([](ClusterConfig& c) { c.checkpoint_interval_sec = -1.0; });
  reject([](ClusterConfig& c) { c.stop_at_checkpoint = -1; });
  reject([](ClusterConfig& c) { c.stop_at_checkpoint = 1; });  // no cadence
  reject([](ClusterConfig& c) { c.preemption_budget = -1; });
  reject([](ClusterConfig& c) { c.min_tracker_floor = -1; });
  reject([](ClusterConfig& c) { c.min_tracker_floor = c.num_slaves + 1; });
  // The combinations that must pass: cadence with a stop, floor at the
  // cluster size, budget on.
  ClusterConfig ok = SmallCluster();
  ok.checkpoint_interval_sec = 10.0;
  ok.stop_at_checkpoint = 3;
  ok.preemption_budget = 2;
  ok.min_tracker_floor = ok.num_slaves;
  EXPECT_NO_THROW(hadoop::ValidateClusterConfig(ok));
}

TEST(HaConfig, AllElasticViolationsReportedAtOnce) {
  ClusterConfig c = SmallCluster();
  c.checkpoint_interval_sec = -2.0;
  c.stop_at_checkpoint = -1;
  c.preemption_budget = -3;
  c.min_tracker_floor = 9;
  try {
    hadoop::ValidateClusterConfig(c);
    FAIL() << "invalid config accepted";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    // -1 stop trips both its own sign check and the no-cadence pairing.
    EXPECT_NE(msg.find("5 violations"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checkpoint_interval_sec must be non-negative"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("stop_at_checkpoint must be non-negative"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("stop_at_checkpoint requires a positive"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("preemption_budget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("min_tracker_floor"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace hd
