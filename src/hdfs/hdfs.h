// Simulated HDFS (§2.2): files stored as fixed-size blocks (fileSplits)
// replicated across DataNodes. The JobTracker queries block locations to
// schedule data-local map tasks; non-local tasks pay a network read.
//
// Two storage modes coexist:
//   * content-backed files (PutFile) hold real split text for functional
//     cluster runs,
//   * synthetic files (PutSyntheticFile) record only split sizes, for the
//     cluster-scale calibrated experiments (Table 2's 7632-split inputs
//     need no materialised bytes).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"

namespace hd::hdfs {

struct HdfsConfig {
  std::int64_t block_size = 256LL << 20;  // Table 3: 256 MB
  int replication = 3;                    // Table 3 (Cluster1); 1 on Cluster2
};

struct SplitInfo {
  std::string path;
  int index = 0;
  std::int64_t bytes = 0;
  std::vector<int> replicas;  // DataNode ids
  bool IsLocalTo(int node) const {
    for (int r : replicas) {
      if (r == node) return true;
    }
    return false;
  }
};

class Hdfs {
 public:
  Hdfs(int num_datanodes, HdfsConfig config, std::uint64_t placement_seed = 7);

  int num_datanodes() const { return num_datanodes_; }
  const HdfsConfig& config() const { return config_; }

  // Stores a content-backed file; each element is one fileSplit. Split
  // sizes must respect the block size.
  void PutFile(const std::string& path, std::vector<std::string> splits);

  // Stores a metadata-only file of `num_splits` splits of `bytes_per_split`.
  void PutSyntheticFile(const std::string& path, int num_splits,
                        std::int64_t bytes_per_split);

  bool Exists(const std::string& path) const;
  void Delete(const std::string& path);

  int NumSplits(const std::string& path) const;
  const SplitInfo& Split(const std::string& path, int index) const;
  std::vector<SplitInfo> Splits(const std::string& path) const;

  // Content of a content-backed split; HD_CHECKs on synthetic files.
  const std::string& SplitContent(const std::string& path, int index) const;
  bool HasContent(const std::string& path) const;

  // Bytes stored per DataNode (replicas counted).
  std::int64_t NodeUsage(int node) const;
  std::int64_t TotalBytes(const std::string& path) const;

 private:
  struct File {
    std::vector<SplitInfo> splits;
    std::vector<std::string> contents;  // empty for synthetic files
  };

  std::vector<int> PlaceReplicas();
  const File& GetFile(const std::string& path) const;

  int num_datanodes_;
  HdfsConfig config_;
  Prng prng_;
  int next_node_ = 0;  // round-robin primary placement
  std::map<std::string, File> files_;
  std::vector<std::int64_t> usage_;
};

}  // namespace hd::hdfs
