// Abstract syntax tree for the mini-C dialect.
//
// The tree is owned top-down through std::unique_ptr. The interpreter and
// translator walk it read-only; the translator additionally records per-node
// annotations (e.g. rewritten builtin calls) in side tables keyed by node
// pointers, so the AST itself stays immutable after parsing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minic/types.h"

namespace hd::minic {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Directives (Table 1 of the paper).
// ---------------------------------------------------------------------------

// A parsed `#pragma mapreduce ...` directive. Clause arguments are kept as
// raw identifier/number strings; the translator resolves them against the
// symbol table.
struct Directive {
  enum class Kind { kMapper, kCombiner };
  Kind kind = Kind::kMapper;
  // clause name -> argument list (in source order).
  std::map<std::string, std::vector<std::string>> clauses;
  int line = 0;

  bool Has(const std::string& clause) const { return clauses.count(clause); }
  // Single-argument accessor; checks arity.
  const std::string& Arg(const std::string& clause) const;
};

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

enum class ExprKind {
  kIntLit,
  kFloatLit,
  kStringLit,
  kVarRef,
  kIndex,     // base[index]
  kUnary,     // -x, !x, ~x, *p, &x, ++x, --x, x++, x--
  kBinary,
  kAssign,    // =, +=, -=, *=, /=, %=
  kCall,
  kCast,
  kTernary,
  kSizeof,
};

enum class UnOp { kNeg, kNot, kBitNot, kDeref, kAddrOf, kPreInc, kPreDec,
                  kPostInc, kPostDec };
enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kLt, kLe, kGt, kGe, kEq,
                   kNe, kAnd, kOr, kBitAnd, kBitOr, kBitXor, kShl, kShr };
enum class AssignOp { kAssign, kAdd, kSub, kMul, kDiv, kMod };

struct Expr {
  ExprKind kind;
  int line = 0;
  int col = 0;  // 1-based column of the token that starts the expression

  // Literals.
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string string_value;  // kStringLit; kVarRef name; kCall callee

  // Operators.
  UnOp un_op{};
  BinOp bin_op{};
  AssignOp assign_op{};

  // Children (meaning depends on kind):
  //   kIndex:   a = base, b = index
  //   kUnary:   a = operand
  //   kBinary:  a, b
  //   kAssign:  a = lhs, b = rhs
  //   kTernary: a = cond, b = then, c = else
  //   kCast:    a = operand (cast_type below)
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;  // kCall arguments
  Type cast_type;             // kCast / kSizeof

  explicit Expr(ExprKind k, int ln, int c = 0) : kind(k), line(ln), col(c) {}
};

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

enum class StmtKind {
  kExpr,
  kDecl,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
};

// One declarator within a declaration statement, e.g. `char word[30]` or
// `char *line = ...`.
struct Declarator {
  std::string name;
  Type type;
  ExprPtr init;  // may be null
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int col = 0;  // 1-based column of the statement's first token

  ExprPtr expr;                 // kExpr, kReturn (nullable), conditions
  std::vector<Declarator> decls;  // kDecl
  StmtPtr then_stmt, else_stmt;   // kIf
  StmtPtr body;                   // loops
  // kFor: init_stmt (decl or expr stmt, nullable), expr = condition
  // (nullable), step (nullable).
  StmtPtr init_stmt;
  ExprPtr step;
  std::vector<StmtPtr> stmts;     // kBlock

  // A HeteroDoop directive attached to this statement (while loop or block),
  // or null. Owned here.
  std::unique_ptr<Directive> directive;

  explicit Stmt(StmtKind k, int ln, int c = 0) : kind(k), line(ln), col(c) {}
};

// ---------------------------------------------------------------------------
// Declarations / translation unit.
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  Type type;
};

struct FunctionDef {
  std::string name;
  Type return_type;
  std::vector<Param> params;
  StmtPtr body;
  int line = 0;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<FunctionDef>> functions;

  const FunctionDef* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f->name == name) return f.get();
    }
    return nullptr;
  }
};

}  // namespace hd::minic
