// hdlint: multi-pass static analysis over directive-annotated mini-C.
//
// The analyzer parses a source, locates every `#pragma mapreduce` region,
// runs region analysis (minic/sema), and then executes a fixed pipeline of
// checking passes, each contributing structured diagnostics:
//
//   directive-check   Table 1 clause validation (arity, placement-clause
//                     consistency, combiner-only clauses, integer args)
//   race-check        writes to sharedRO/texture variables; accumulation
//                     into auto-privatized state the host never sees
//   kv-bounds         emitted key/value sizes vs KvLayout slots; kvpairs
//                     hints vs static emission counts per record
//   placement-audit   explains Algorithm 1 classifications; texture-eligible
//                     arrays that lost texture placement; char[] KV slots
//                     that will not vectorize to char4
//   portability       recursion, calls to undefined functions, dynamic
//                     allocation inside regions, potentially unbounded loops
//
// The translator runs the same pipeline before building kernel plans, so
// invalid programs fail with every problem reported in one TranslateError
// instead of dying on the first throw.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "minic/ast.h"
#include "minic/sema.h"

namespace hd::analysis {

struct AnalyzerOptions {
  // Name used in diagnostic locations ("<source>" for in-memory programs).
  std::string source_name = "<source>";
  // When true (translator mode) a missing main()/directive is an error;
  // when false (lint mode) plain mini-C files lint fine without either.
  bool require_directive = false;
  // Emit one placement-audit note per external variable explaining its
  // Algorithm 1 classification (hdlint --audit).
  bool audit_notes = false;
  // Mirror of TranslateOptions: classification and KV slot math must agree
  // with the translator's.
  bool auto_firstprivate = true;
  int int_text_bytes = 16;
  int double_text_bytes = 28;
};

// One directive-annotated region prepared for the passes.
struct RegionContext {
  const minic::FunctionDef* fn = nullptr;
  const minic::Stmt* region = nullptr;
  const minic::Directive* directive = nullptr;
  minic::RegionInfo info;
};

struct AnalysisResult {
  // Null when the source failed to lex/parse (an HD001 error is recorded).
  std::shared_ptr<minic::TranslationUnit> unit;
  std::vector<RegionContext> regions;  // directive regions found in main()
  DiagnosticEngine diags;
};

// Mirror of the translator's Algorithm 1 placement decision, with the
// reason spelled out (consumed by the placement-audit pass and by tests
// that pin the mirror to translator::ClassifyVariables).
enum class Placement {
  kConstant,      // sharedRO scalar -> kernel parameter / constant memory
  kGlobal,        // sharedRO array -> device global memory
  kTexture,       // texture clause -> texture memory
  kFirstPrivate,  // per-thread copy initialised from the host value
  kPrivate,       // per-thread copy, uninitialised
};

const char* PlacementName(Placement p);

struct PlacementDecision {
  Placement placement = Placement::kPrivate;
  std::string reason;
};

// Classifies one external variable of `rc` exactly as Algorithm 1 does.
PlacementDecision ClassifyPlacement(const std::string& name,
                                    const RegionContext& rc,
                                    const AnalyzerOptions& opts);

// KV-store slot width for one emitted variable: keylength/vallength count
// elements; char arrays store raw bytes; numeric scalars render as text.
// The translator's KvLayout is derived from this same function.
int KvSlotBytes(const minic::Type& t, int declared_len, int int_text_bytes,
                int double_text_bytes);

// Parses `source` and runs every analysis pass. Lex/parse failures become
// HD001 diagnostics (result.unit stays null); the passes never throw.
AnalysisResult AnalyzeSource(const std::string& source,
                             const AnalyzerOptions& opts = {});

// Runs the passes over an already-parsed unit (shared with the translator,
// which reuses the parse for plan building).
void RunPasses(const minic::TranslationUnit& unit, const AnalyzerOptions& opts,
               AnalysisResult* result);

}  // namespace hd::analysis
