# Empty dependencies file for fig3_tail_example.
# This may be replaced when dependencies are built.
