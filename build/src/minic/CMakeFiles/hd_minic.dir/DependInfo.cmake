
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/builtins.cc" "src/minic/CMakeFiles/hd_minic.dir/builtins.cc.o" "gcc" "src/minic/CMakeFiles/hd_minic.dir/builtins.cc.o.d"
  "/root/repo/src/minic/interp.cc" "src/minic/CMakeFiles/hd_minic.dir/interp.cc.o" "gcc" "src/minic/CMakeFiles/hd_minic.dir/interp.cc.o.d"
  "/root/repo/src/minic/lexer.cc" "src/minic/CMakeFiles/hd_minic.dir/lexer.cc.o" "gcc" "src/minic/CMakeFiles/hd_minic.dir/lexer.cc.o.d"
  "/root/repo/src/minic/parser.cc" "src/minic/CMakeFiles/hd_minic.dir/parser.cc.o" "gcc" "src/minic/CMakeFiles/hd_minic.dir/parser.cc.o.d"
  "/root/repo/src/minic/sema.cc" "src/minic/CMakeFiles/hd_minic.dir/sema.cc.o" "gcc" "src/minic/CMakeFiles/hd_minic.dir/sema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
