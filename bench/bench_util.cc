#include "bench/bench_util.h"

#include <cmath>

#include "common/check.h"

namespace hd::bench {

gpurt::GpuTaskOptions BaselineGpuOptions() {
  gpurt::GpuTaskOptions o;
  o.vectorize_map = false;
  o.vectorize_combine = false;
  o.use_texture = false;
  o.record_stealing = false;
  o.aggregate_before_sort = false;
  return o;
}

MeasuredTask MeasureTask(const apps::Benchmark& bench,
                         const MeasureConfig& config) {
  gpurt::JobProgram job = gpurt::CompileJob(
      bench.map_source, bench.combine_source, bench.reduce_source);
  const std::string split = bench.generate(config.split_bytes, config.seed);
  const int reducers = bench.map_only ? 0 : bench.num_reducers();

  MeasuredTask m;
  {
    gpurt::CpuTaskOptions copts;
    copts.num_reducers = reducers;
    copts.io = config.io;
    m.cpu = gpurt::CpuMapTask(job, config.cpu, copts).Run(split);
  }
  {
    gpusim::GpuDevice device(config.device);
    gpurt::GpuTaskOptions gopts;
    gopts.num_reducers = reducers;
    gopts.io = config.io;
    m.gpu = gpurt::GpuMapTask(job, &device, gopts).Run(split);
  }
  if (config.measure_baseline) {
    gpusim::GpuDevice device(config.device);
    gpurt::GpuTaskOptions gopts = BaselineGpuOptions();
    gopts.num_reducers = reducers;
    gopts.io = config.io;
    m.gpu_baseline = gpurt::GpuMapTask(job, &device, gopts).Run(split);
  }
  return m;
}

double GeoMean(const std::vector<double>& xs) {
  HD_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace hd::bench
