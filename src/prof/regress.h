// The continuous-benchmark suite document and its regression comparator.
//
// `bench/regress` runs the figure benches and serializes one suite
// document per revision; `hdprof compare A.json B.json` diffs two such
// documents. Schema "heterodoop.bench-suite.v1":
//
//   {
//     "schema": "heterodoop.bench-suite.v1",
//     "rev": "<revision id>",
//     "smoke": <bool>,
//     "suite": [
//       {
//         "benchmark": "<binary id>",
//         "modeled_seconds": <number>,
//         "metrics": { <flat numeric metrics from the bench report> }
//       }, ...
//     ]
//   }
//
// Comparison semantics: `modeled_seconds` is the scored metric — a
// relative increase beyond the noise threshold is a regression, a decrease
// beyond it an improvement. Metrics whose key starts with "pinned." are
// additionally scored as higher-is-better *wall-clock* numbers (events/sec
// throughput pins): because they are machine-dependent, they get their own
// generous `pinned_threshold` — only a collapse beyond it (or the key
// disappearing) counts as a regression. Every other metric key present in
// both runs is diffed for *attribution* only (what changed inside the
// regressing bench), never scored. Benchmarks present on one side only are
// reported as added/removed. Because same-seed simulator runs are
// bit-identical, the default threshold guards only against intentional
// model changes, not wall-clock noise.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hd::prof {

inline constexpr const char* kSuiteSchema = "heterodoop.bench-suite.v1";

struct BenchRun {
  std::string benchmark;
  double modeled_seconds = 0.0;
  // Flat numeric metrics, sorted by key (the registry export order).
  std::vector<std::pair<std::string, double>> metrics;

  const double* FindMetric(const std::string& key) const;
};

struct Suite {
  std::string rev;
  bool smoke = false;
  std::vector<BenchRun> runs;

  const BenchRun* FindRun(const std::string& benchmark) const;
};

// Parses a suite document; throws std::runtime_error on malformed input or
// a schema mismatch.
Suite ParseSuite(std::string_view text);
Suite LoadSuite(const std::string& path);
void WriteSuite(std::ostream& os, const Suite& suite);

// Builds one suite entry from a "heterodoop.bench.v1" report document
// (keeps `benchmark`, `modeled_seconds` and the numeric `metrics` keys).
BenchRun RunFromBenchReport(std::string_view report_json);

struct Delta {
  std::string benchmark;
  std::string metric;  // "modeled_seconds" or a metrics key
  double before = 0.0;
  double after = 0.0;
  double rel_change = 0.0;  // (after - before) / before; 0/0 -> 0
  bool scored = false;      // modeled_seconds and "pinned." rows only
  bool regression = false;  // scored && beyond the metric's threshold
};

// Key prefix marking a wall-clock throughput metric scored with
// `pinned_threshold` (higher is better) instead of being
// attribution-only.
inline constexpr const char* kPinnedPrefix = "pinned.";

struct CompareOptions {
  // Relative modeled_seconds change beyond which a delta counts.
  double threshold = 0.01;
  // Relative drop in a "pinned." metric beyond which the drop is a
  // regression. Pinned metrics are wall-clock measurements, so the
  // default only fails on order-of-magnitude collapses (a 10x slowdown
  // is -0.9), never on machine-to-machine noise.
  double pinned_threshold = 0.9;
};

struct CompareResult {
  std::vector<Delta> deltas;  // beyond-threshold changes, suite order
  std::vector<std::string> added_benchmarks;    // in `after` only
  std::vector<std::string> removed_benchmarks;  // in `before` only
  int regressions = 0;
  int improvements = 0;

  bool Failed() const { return regressions > 0 || !removed_benchmarks.empty(); }
};

CompareResult Compare(const Suite& before, const Suite& after,
                      const CompareOptions& opts = {});

}  // namespace hd::prof
