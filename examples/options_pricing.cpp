// Map-only options pricing at cluster scale: the BlackScholes job (the
// paper's most compute-intensive benchmark) on Cluster2-style nodes with
// 1..3 GPUs, plus a GPU fault-tolerance demonstration — tasks that fail on
// a memory-starved device fall back to CPU slots and the job still
// completes correctly (§5.1).
//
// Build & run:  cmake --build build && ./build/examples/options_pricing
#include <iostream>

#include "apps/benchmark.h"
#include "common/table.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

int main() {
  using namespace hd;
  using sched::Policy;

  const apps::Benchmark& bs = apps::GetBenchmark("BS");
  gpurt::JobProgram job = gpurt::CompileJob(bs.map_source);

  std::vector<std::string> splits;
  for (int i = 0; i < 12; ++i) splits.push_back(bs.generate(8000, 7 + i));

  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 2;
  cluster.map_slots_per_node = 4;
  cluster.heartbeat_sec = 0.05;

  std::cout << "== Multi-GPU scaling, map-only BlackScholes ==\n";
  Table t({"GPUs/node", "Makespan (s)", "GPU tasks", "Speedup vs CPU-only"});
  double cpu_only = 0.0;
  for (int gpus : {0, 1, 2, 3}) {
    hadoop::FunctionalTaskSource::Options fopts;
    fopts.num_reducers = 0;
    fopts.device = gpusim::DeviceConfig::TeslaM2090();
    fopts.io = gpurt::IoConfig::InMemory();
    hadoop::FunctionalTaskSource source(job, splits, fopts);
    cluster.gpus_per_node = gpus;
    hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source,
                          gpus == 0 ? Policy::kCpuOnly : Policy::kTail)
            .Run();
    if (gpus == 0) cpu_only = r.makespan_sec;
    t.Row()
        .Cell(gpus)
        .Cell(r.makespan_sec, 4)
        .Cell(r.gpu_tasks)
        .Cell(cpu_only / r.makespan_sec, 2);
  }
  t.Print(std::cout);

  std::cout << "\n== Fault tolerance: GPU with too little memory ==\n";
  {
    hadoop::FunctionalTaskSource::Options fopts;
    fopts.num_reducers = 0;
    fopts.device = gpusim::DeviceConfig::TeslaM2090();
    fopts.device.global_mem_bytes = 1024;  // every GPU attempt OOMs
    fopts.io = gpurt::IoConfig::InMemory();
    hadoop::FunctionalTaskSource source(job, splits, fopts);
    cluster.gpus_per_node = 1;
    hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source, Policy::kGpuFirst).Run();
    std::cout << "  GPU failures: " << r.gpu_failures
              << ", tasks completed on CPU: " << r.cpu_tasks
              << ", priced options: " << r.final_output.size() << "\n";
  }

  // Show a few priced options from the last run's output.
  hadoop::FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 0;
  hadoop::FunctionalTaskSource source(job, splits, fopts);
  cluster.gpus_per_node = 1;
  hadoop::JobResult r =
      hadoop::JobEngine(cluster, &source, Policy::kTail).Run();
  std::cout << "\nSample prices (option -> call put):\n";
  for (std::size_t i = 0; i < 5 && i < r.final_output.size(); ++i) {
    std::cout << "  " << r.final_output[i].key << " -> "
              << r.final_output[i].value << "\n";
  }
  const std::string diff =
      apps::CompareWithGolden(bs, bs.golden(splits), r.final_output);
  std::cout << (diff.empty() ? "\nAll prices match the reference "
                               "Black-Scholes implementation.\n"
                             : "\nMISMATCH: " + diff + "\n");
  return diff.empty() ? 0 : 1;
}
