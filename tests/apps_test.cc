#include <gtest/gtest.h>

#include "apps/benchmark.h"
#include "apps/gen.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

namespace hd::apps {
namespace {

using hadoop::ClusterConfig;
using hadoop::FunctionalTaskSource;
using hadoop::JobEngine;
using sched::Policy;

TEST(Registry, EightBenchmarksInTableOrder) {
  const auto& all = AllBenchmarks();
  ASSERT_EQ(all.size(), 8u);
  std::vector<std::string> ids;
  for (const auto& b : all) ids.push_back(b.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"GR", "HS", "WC", "HR", "LR",
                                           "KM", "CL", "BS"}));
}

TEST(Registry, Table2PropertiesMatchPaper) {
  EXPECT_TRUE(GetBenchmark("GR").has_combiner);
  EXPECT_TRUE(GetBenchmark("WC").has_combiner);
  EXPECT_FALSE(GetBenchmark("KM").has_combiner);
  EXPECT_FALSE(GetBenchmark("CL").has_combiner);
  EXPECT_FALSE(GetBenchmark("BS").has_combiner);
  EXPECT_TRUE(GetBenchmark("BS").map_only);
  EXPECT_EQ(GetBenchmark("BS").cluster1.reduce_tasks, 0);
  EXPECT_EQ(GetBenchmark("WC").cluster1.reduce_tasks, 48);
  EXPECT_EQ(GetBenchmark("GR").cluster1.map_tasks, 7632);
  EXPECT_FALSE(GetBenchmark("KM").cluster2.available);
  EXPECT_TRUE(GetBenchmark("GR").io_intensive);
  EXPECT_FALSE(GetBenchmark("BS").io_intensive);
}

TEST(Registry, UnknownIdThrows) {
  EXPECT_THROW(GetBenchmark("XX"), CheckError);
}

TEST(Registry, AllSourcesCompile) {
  for (const auto& b : AllBenchmarks()) {
    EXPECT_NO_THROW({
      gpurt::JobProgram job =
          gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source);
      EXPECT_TRUE(job.map.map_plan.has_value()) << b.id;
      EXPECT_EQ(job.has_combiner(), b.has_combiner) << b.id;
      EXPECT_EQ(job.reduce == nullptr, b.map_only) << b.id;
    }) << b.id;
  }
}

TEST(Registry, TextureClauseOnClusteringApps) {
  for (const char* id : {"KM", "CL"}) {
    const Benchmark& b = GetBenchmark(id);
    auto job = gpurt::CompileJob(b.map_source, b.combine_source,
                                 b.reduce_source);
    const auto* var = job.map.map_plan->FindVar("centroids");
    ASSERT_NE(var, nullptr) << id;
    EXPECT_EQ(var->cls, translator::VarClass::kTexture) << id;
  }
}

TEST(Generators, DeterministicAndSized) {
  for (const auto& b : AllBenchmarks()) {
    const std::string a = b.generate(4096, 11);
    const std::string c = b.generate(4096, 11);
    EXPECT_EQ(a, c) << b.id;
    EXPECT_GE(static_cast<std::int64_t>(a.size()), 4096) << b.id;
    EXPECT_LT(static_cast<std::int64_t>(a.size()), 4096 + 1024) << b.id;
    EXPECT_EQ(a.back(), '\n') << b.id;
    EXPECT_NE(b.generate(4096, 12), a) << b.id << " seed-insensitive";
  }
}

TEST(Generators, RatingsWellFormed) {
  const std::string data = GenRatings(2048, 3);
  std::istringstream is(data);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string id;
    ls >> id;
    EXPECT_EQ(id[0], 'm');
    int rating, n = 0;
    while (ls >> rating) {
      EXPECT_GE(rating, 1);
      EXPECT_LE(rating, 5);
      ++n;
    }
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 400);
  }
}

TEST(Generators, Points32HaveThirtyTwoFields) {
  const std::string data = GenPoints32(2048, 3);
  std::istringstream is(data);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    double v;
    int n = 0;
    while (ls >> v) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 10.0);
      ++n;
    }
    EXPECT_EQ(n, 32);
  }
}

// --- full pipeline vs golden, per benchmark and policy ----------------------

struct PipelineCase {
  const char* id;
  Policy policy;
};

class BenchmarkPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(BenchmarkPipeline, ClusterRunMatchesGolden) {
  const auto& [id, policy] = GetParam();
  const Benchmark& bench = GetBenchmark(id);
  gpurt::JobProgram job = gpurt::CompileJob(
      bench.map_source, bench.combine_source, bench.reduce_source);

  std::vector<std::string> splits;
  for (int i = 0; i < 4; ++i) {
    splits.push_back(bench.generate(3000, 100 + i));
  }

  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = bench.map_only ? 0 : 3;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;
  FunctionalTaskSource source(job, splits, fopts);

  ClusterConfig cluster;
  cluster.num_slaves = 2;
  cluster.map_slots_per_node = 2;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.heartbeat_sec = 0.05;
  hadoop::JobResult result = JobEngine(cluster, &source, policy).Run();

  EXPECT_EQ(result.cpu_tasks + result.gpu_tasks, 4);
  if (policy != Policy::kCpuOnly) EXPECT_GT(result.gpu_tasks, 0);
  const std::string diff =
      CompareWithGolden(bench, bench.golden(splits), result.final_output,
                        1e-4);
  EXPECT_EQ(diff, "");
}

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  return std::string(info.param.id) + "_" +
         sched::PolicyName(info.param.policy)[0] +
         std::string(sched::PolicyName(info.param.policy)).substr(1, 2);
}

std::vector<PipelineCase> AllCases() {
  std::vector<PipelineCase> cases;
  for (const auto& b : AllBenchmarks()) {
    for (Policy p : {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
      cases.push_back({b.id.c_str(), p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkPipeline,
                         ::testing::ValuesIn(AllCases()), CaseName);

// --- single-task behaviour ---------------------------------------------------

TEST(TaskSpeedups, ComputeAppsGainMoreThanIoApps) {
  // Fig. 5's headline shape: single-task GPU speedup grows with compute
  // intensity; BS (most compute-intensive) tops the suite.
  // Use a split large enough that the launched lanes each see several
  // records (a real fileSplit is 256 MB; fixed kernel costs must not
  // dominate).
  auto speedup_of = [](const Benchmark& bench) {
    gpurt::JobProgram job = gpurt::CompileJob(
        bench.map_source, bench.combine_source, bench.reduce_source);
    const std::string split = bench.generate(60000, 5);
    gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
    gpurt::CpuTaskOptions copts;
    copts.num_reducers = bench.map_only ? 0 : 4;
    auto cpu_r = gpurt::CpuMapTask(job, cpu, copts).Run(split);
    gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
    gpurt::GpuTaskOptions gopts;
    gopts.num_reducers = bench.map_only ? 0 : 4;
    gopts.blocks = 8;
    gopts.threads = 64;
    auto gpu_r = gpurt::GpuMapTask(job, &device, gopts).Run(split);
    return cpu_r.phases.Total() / gpu_r.phases.Total();
  };
  const double gr = speedup_of(GetBenchmark("GR"));
  const double bs = speedup_of(GetBenchmark("BS"));
  const double cl = speedup_of(GetBenchmark("CL"));
  EXPECT_GT(bs, cl);
  EXPECT_GT(cl, gr);
  EXPECT_GT(bs, 5.0);  // strongly compute-bound
  EXPECT_GT(gr, 0.5);  // GPU never catastrophically loses
}

}  // namespace
}  // namespace hd::apps
