# Empty dependencies file for seqfile_test.
# This may be replaced when dependencies are built.
