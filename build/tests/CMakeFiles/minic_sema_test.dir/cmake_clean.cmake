file(REMOVE_RECURSE
  "CMakeFiles/minic_sema_test.dir/minic_sema_test.cc.o"
  "CMakeFiles/minic_sema_test.dir/minic_sema_test.cc.o.d"
  "minic_sema_test"
  "minic_sema_test.pdb"
  "minic_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
