# Empty compiler generated dependencies file for hd_gpurt.
# This may be replaced when dependencies are built.
