#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/check.h"

namespace hd::json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  HD_CHECK_MSG(std::isfinite(v), "JSON cannot represent inf/nan");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  HD_CHECK(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

void Writer::BeforeValue() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.is_object) {
    HD_CHECK_MSG(top.key_pending, "JSON object value emitted without Key()");
    top.key_pending = false;
    return;
  }
  if (top.has_value) os_ << ',';
  top.has_value = true;
}

Writer& Writer::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back({/*is_object=*/true, false, false});
  return *this;
}

Writer& Writer::EndObject() {
  HD_CHECK(!stack_.empty() && stack_.back().is_object);
  HD_CHECK_MSG(!stack_.back().key_pending, "JSON key without a value");
  stack_.pop_back();
  os_ << '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back({/*is_object=*/false, false, false});
  return *this;
}

Writer& Writer::EndArray() {
  HD_CHECK(!stack_.empty() && !stack_.back().is_object);
  stack_.pop_back();
  os_ << ']';
  return *this;
}

Writer& Writer::Key(std::string_view k) {
  HD_CHECK(!stack_.empty() && stack_.back().is_object);
  Level& top = stack_.back();
  HD_CHECK_MSG(!top.key_pending, "two JSON keys in a row");
  if (top.has_value) os_ << ',';
  top.has_value = true;
  top.key_pending = true;
  os_ << '"' << Escape(k) << "\":";
  return *this;
}

Writer& Writer::String(std::string_view v) {
  BeforeValue();
  os_ << '"' << Escape(v) << '"';
  return *this;
}

Writer& Writer::Int(std::int64_t v) {
  BeforeValue();
  os_ << v;
  return *this;
}

Writer& Writer::Number(double v) {
  BeforeValue();
  os_ << FormatNumber(v);
  return *this;
}

Writer& Writer::Bool(bool v) {
  BeforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value ParseValue() {
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
        if (!Consume("true")) Fail("bad literal");
        return MakeBool(true);
      case 'f':
        if (!Consume("false")) Fail("bad literal");
        return MakeBool(false);
      case 'n':
        if (!Consume("null")) Fail("bad literal");
        return Value{};
      default: return ParseNumber();
    }
  }

  static Value MakeBool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the exporters never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: Fail("bad escape");
      }
    }
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      Fail("malformed number");
    }
    return v;
  }

  Value ParseObject() {
    Expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.object.emplace_back(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  Value ParseArray() {
    Expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Parse(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace hd::json
