# Empty compiler generated dependencies file for minic_lexer_test.
# This may be replaced when dependencies are built.
