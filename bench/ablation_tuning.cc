// Ablations for the design choices DESIGN.md calls out beyond Fig. 7:
//
//  1. blocks/threads launch tuning (§3.2: "These clauses help tune the map
//     and combine kernel performance") — a sweep over launch geometries for
//     one IO-intensive and one compute-intensive benchmark.
//  2. kvpairs clause (§3.2/§4.3): global-KV-store footprint and aggregation
//     efficiency with and without the hint.
//  3. Inter-node heterogeneity (§9 future work, implemented here): job
//     makespans on a cluster whose second half runs at half speed.
#include <string>

#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "common/strings.h"
#include "hadoop/engine.h"

using namespace hd;

namespace {

void LaunchTuningSweep(bench::Reporter& rep, const char* id) {
  const apps::Benchmark& b = apps::GetBenchmark(id);
  gpurt::JobProgram job =
      gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source);
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;
  const std::string split = b.generate(split_bytes, 1);
  rep.out() << "Launch tuning, " << id << " (map kernel ms):\n";
  auto& t = rep.AddTable(std::string("launch_tuning_") + id,
                         {"blocks\\threads", "64", "128", "256"});
  for (int blocks : {15, 30, 60, 120}) {
    bench::ReportTable& row = t.Row();
    row.Cell(std::to_string(blocks));
    for (int threads : {64, 128, 256}) {
      gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
      gpurt::GpuTaskOptions opts;
      opts.num_reducers = b.map_only ? 0 : b.num_reducers();
      opts.blocks = blocks;
      opts.threads = threads;
      opts.metrics = rep.metrics();
      auto r = gpurt::GpuMapTask(job, &device, opts).Run(split);
      rep.AddModeledSeconds(r.phases.Total());
      row.Cell(r.phases.map * 1e3, 3);
    }
  }
  rep.Print(t);
  rep.out() << "\n";
}

void KvpairsFootprint(bench::Reporter& rep) {
  rep.out() << "kvpairs clause: KV-store footprint (WC with/without hint)\n";
  const apps::Benchmark& wc = apps::GetBenchmark("WC");
  std::string hinted = wc.map_source;
  hinted.insert(hinted.find("vallength(1)") + 12, " kvpairs(300)");
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;
  auto& t = rep.AddTable(
      "kvpairs_footprint",
      {"Variant", "allocated slots", "whitespace slots", "sort (ms)"});
  for (bool with_hint : {false, true}) {
    gpurt::JobProgram job =
        gpurt::CompileJob(with_hint ? hinted : wc.map_source,
                          wc.combine_source, wc.reduce_source);
    gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
    gpurt::GpuTaskOptions opts;
    opts.num_reducers = wc.num_reducers();
    opts.metrics = rep.metrics();
    auto r = gpurt::GpuMapTask(job, &device, opts)
                 .Run(wc.generate(split_bytes, 1));
    rep.AddModeledSeconds(r.phases.Total());
    t.Row()
        .Cell(with_hint ? "kvpairs(300)" : "no hint (all free memory)")
        .Cell(r.stats.allocated_slots)
        .Cell(r.stats.whitespace_slots)
        .Cell(r.phases.sort * 1e3, 3);
  }
  rep.Print(t);
  rep.out() << "\n";
}

void Heterogeneity(bench::Reporter& rep) {
  rep.out() << "Inter-node heterogeneity (extension): 8 slaves, second half "
               "at 0.5x speed\n";
  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = 256;
  p.num_reducers = 4;
  p.cpu_task_sec = 20.0;
  p.gpu_task_sec = 4.0;
  p.variation = 0.1;
  hadoop::ClusterConfig base;
  base.num_slaves = 8;
  base.map_slots_per_node = 4;
  base.gpus_per_node = 1;
  base.metrics = rep.metrics();

  auto& t = rep.AddTable(
      "heterogeneity",
      {"Cluster", "CPU-only (s)", "GPU-first (s)", "Tail (s)",
       "Tail speedup"});
  for (bool hetero : {false, true}) {
    hadoop::ClusterConfig c = base;
    if (hetero) {
      c.node_speed_factors = {1, 1, 1, 1, 2, 2, 2, 2};
    }
    double times[3];
    int i = 0;
    for (auto policy : {sched::Policy::kCpuOnly, sched::Policy::kGpuFirst,
                        sched::Policy::kTail}) {
      hadoop::CalibratedTaskSource source(p);
      double makespan =
          hadoop::JobEngine(c, &source, policy).Run().makespan_sec;
      rep.AddModeledSeconds(makespan);
      times[i++] = makespan;
    }
    t.Row()
        .Cell(hetero ? "heterogeneous" : "homogeneous")
        .Cell(times[0], 1)
        .Cell(times[1], 1)
        .Cell(times[2], 1)
        .Cell(times[0] / times[2], 2);
  }
  rep.Print(t);
  rep.out() << "\nTail scheduling keeps helping under node heterogeneity; "
               "the straggling slow\nnodes lengthen every policy's tail "
               "(locality-vs-speed trade-offs are future work,\npaper 9).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("ablation_tuning", argc, argv);
  rep.out() << "Ablations beyond Fig. 7\n\n";
  LaunchTuningSweep(rep, "HS");
  LaunchTuningSweep(rep, "CL");
  KvpairsFootprint(rep);
  Heterogeneity(rep);
  return rep.Finish();
}
