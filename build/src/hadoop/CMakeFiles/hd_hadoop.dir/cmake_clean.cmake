file(REMOVE_RECURSE
  "CMakeFiles/hd_hadoop.dir/engine.cc.o"
  "CMakeFiles/hd_hadoop.dir/engine.cc.o.d"
  "CMakeFiles/hd_hadoop.dir/functional_source.cc.o"
  "CMakeFiles/hd_hadoop.dir/functional_source.cc.o.d"
  "libhd_hadoop.a"
  "libhd_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
