# Empty dependencies file for minic_parser_test.
# This may be replaced when dependencies are built.
