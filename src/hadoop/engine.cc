#include "hadoop/engine.h"

#include <algorithm>

#include "common/check.h"

namespace hd::hadoop {

JobEngine::JobEngine(ClusterConfig config, TaskTimeSource* source,
                     sched::Policy policy, const hdfs::Hdfs* fs,
                     std::string input_path)
    : cfg_(config),
      source_(source),
      policy_(policy),
      fs_(fs),
      input_path_(std::move(input_path)) {
  HD_CHECK(source_ != nullptr);
  HD_CHECK(cfg_.num_slaves > 0);
  HD_CHECK(cfg_.map_slots_per_node > 0);
  if (fs_ != nullptr) {
    HD_CHECK_MSG(fs_->NumSplits(input_path_) == source_->num_map_tasks(),
                 "input file split count does not match the task source");
  }
  if (!cfg_.node_speed_factors.empty()) {
    HD_CHECK_MSG(static_cast<int>(cfg_.node_speed_factors.size()) ==
                     cfg_.num_slaves,
                 "node_speed_factors must have one entry per slave");
    for (double f : cfg_.node_speed_factors) HD_CHECK(f > 0.0);
  }
  nodes_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  for (auto& n : nodes_) {
    n.free_cpu = cfg_.map_slots_per_node;
    n.free_gpu = policy_ == sched::Policy::kCpuOnly ? 0 : cfg_.gpus_per_node;
  }
  remaining_maps_ = source_->num_map_tasks();
  pending_.resize(static_cast<std::size_t>(remaining_maps_));
  for (int i = 0; i < remaining_maps_; ++i) pending_[i] = i;
}

sched::NodeSched JobEngine::SchedView(const Node& n) const {
  sched::NodeSched v;
  v.free_cpu_slots = n.free_cpu;
  v.free_gpu_slots = n.free_gpu;
  v.num_gpus = policy_ == sched::Policy::kCpuOnly ? 0 : cfg_.gpus_per_node;
  v.ave_speedup = n.AveSpeedup();
  return v;
}

bool JobEngine::IsLocal(int node_id, int task) const {
  if (fs_ == nullptr) return true;
  return fs_->Split(input_path_, task).IsLocalTo(node_id);
}

std::vector<int> JobEngine::PickTasks(int node_id, int max_tasks) {
  std::vector<int> picked;
  if (max_tasks <= 0) return picked;
  // Pass 1: data-local splits.
  for (auto it = pending_.begin();
       it != pending_.end() && static_cast<int>(picked.size()) < max_tasks;) {
    if (IsLocal(node_id, *it)) {
      picked.push_back(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: any split.
  while (static_cast<int>(picked.size()) < max_tasks && !pending_.empty()) {
    picked.push_back(pending_.front());
    pending_.erase(pending_.begin());
  }
  return picked;
}

void JobEngine::Heartbeat(int node_id) {
  if (done_) return;
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  // JobTracker side: choose how many tasks this response carries, and the
  // numMapsRemainingPerNode estimate it ships alongside (Algorithm 2,
  // lines 8-9) — both computed before handing out this response's tasks.
  const int max_tasks = sched::MaxTasksThisHeartbeat(
      policy_, SchedView(node), static_cast<int>(pending_.size()),
      max_speedup_, cfg_.num_slaves);
  const double remaining_per_node =
      static_cast<double>(pending_.size()) / cfg_.num_slaves;
  const std::vector<int> tasks = PickTasks(node_id, max_tasks);
  // TaskTracker side: place each assigned task.
  for (int task : tasks) PlaceTask(node_id, task, remaining_per_node);
}

void JobEngine::PlaceTask(int node_id, int task,
                          double maps_remaining_per_node) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  const bool want_gpu =
      sched::PlaceOnGpu(policy_, SchedView(node), maps_remaining_per_node);
  if (want_gpu) {
    if (node.free_gpu > 0) {
      StartMap(node_id, task, /*on_gpu=*/true);
    } else {
      // Tail forcing with every local GPU busy: hand the task back so the
      // next TaskTracker with an idle GPU picks it up, rather than queueing
      // behind this node's GPU.
      pending_.insert(pending_.begin(), task);
    }
    return;
  }
  if (node.free_cpu > 0) {
    StartMap(node_id, task, /*on_gpu=*/false);
  } else if (node.free_gpu > 0) {
    StartMap(node_id, task, /*on_gpu=*/true);
  } else {
    // No capacity after all (tail cap raced with completions): put back.
    pending_.insert(pending_.begin(), task);
  }
}

void JobEngine::StartMap(int node_id, int task, bool on_gpu) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  MapTaskTiming timing;
  if (on_gpu) {
    try {
      timing = source_->MapTask(task, /*on_gpu=*/true);
    } catch (const GpuTaskFailure&) {
      // §5.1: the failure is reported to the TaskTracker, the GPU driver is
      // revived, and the task is rescheduled — here directly onto a CPU
      // slot when one is free.
      ++result_.gpu_failures;
      if (node.free_cpu > 0) {
        StartMap(node_id, task, /*on_gpu=*/false);
      } else {
        pending_.insert(pending_.begin(), task);
      }
      return;
    }
    --node.free_gpu;
    ++result_.gpu_tasks;
  } else {
    timing = source_->MapTask(task, /*on_gpu=*/false);
    HD_CHECK(node.free_cpu > 0);
    --node.free_cpu;
    ++result_.cpu_tasks;
  }
  double duration = timing.seconds;
  if (!cfg_.node_speed_factors.empty()) {
    duration *= cfg_.node_speed_factors[static_cast<std::size_t>(node_id)];
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " start task=" << task
                << " node=" << node_id << (on_gpu ? " GPU" : " CPU")
                << " dur=" << timing.seconds << "\n";
  }
  if (!IsLocal(node_id, task)) {
    ++result_.nonlocal_tasks;
    duration += static_cast<double>(fs_->Split(input_path_, task).bytes) /
                cfg_.network_bytes_per_sec;
  }
  result_.total_map_output_bytes += timing.output_bytes;
  events_.After(duration, [this, node_id, task, on_gpu, duration] {
    FinishMap(node_id, task, on_gpu, duration);
  });
}

void JobEngine::FinishMap(int node_id, int task, bool on_gpu,
                          double duration) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now() << " finish task=" << task
                << " node=" << node_id << (on_gpu ? " GPU" : " CPU") << "\n";
  }
  if (on_gpu) {
    ++node.free_gpu;
    node.gpu_avg = (node.gpu_avg * node.gpu_n + duration) / (node.gpu_n + 1);
    ++node.gpu_n;
  } else {
    ++node.free_cpu;
    node.cpu_avg = (node.cpu_avg * node.cpu_n + duration) / (node.cpu_n + 1);
    ++node.cpu_n;
  }
  max_speedup_ = std::max(max_speedup_, node.AveSpeedup());
  result_.max_observed_speedup = max_speedup_;
  --remaining_maps_;
  ++maps_done_;

  OnMapsProgress();
  if (!done_) {
    // Out-of-band heartbeat on task completion (Hadoop 1.x behaviour).
    Heartbeat(node_id);
  }
}

void JobEngine::OnMapsProgress() {
  const int total = source_->num_map_tasks();
  if (!reduces_scheduled_ && source_->num_reducers() > 0 &&
      maps_done_ >= static_cast<int>(cfg_.reduce_slowstart * total)) {
    reduces_scheduled_ = true;
    const int reduce_capacity = cfg_.num_slaves * cfg_.reduce_slots_per_node;
    HD_CHECK_MSG(source_->num_reducers() <= reduce_capacity,
                 "more reducers than reduce slots; wave scheduling of "
                 "reducers is not modeled");
    reduce_start_.assign(static_cast<std::size_t>(source_->num_reducers()),
                         events_.now());
  }
  if (remaining_maps_ == 0) FinishJob();
}

void JobEngine::FinishJob() {
  HD_CHECK(!done_);
  done_ = true;
  result_.map_phase_end_sec = events_.now();
  double makespan = result_.map_phase_end_sec;
  if (source_->num_reducers() > 0) {
    if (!reduces_scheduled_) {
      reduce_start_.assign(static_cast<std::size_t>(source_->num_reducers()),
                           events_.now());
    }
    const double shuffle_bytes_per_reducer =
        static_cast<double>(result_.total_map_output_bytes) /
        source_->num_reducers();
    for (int r = 0; r < source_->num_reducers(); ++r) {
      const double fetch_done =
          std::max(result_.map_phase_end_sec,
                   reduce_start_[static_cast<std::size_t>(r)] +
                       shuffle_bytes_per_reducer / cfg_.network_bytes_per_sec);
      makespan = std::max(makespan, fetch_done + source_->ReduceSeconds(r));
    }
  }
  result_.makespan_sec = makespan;
  result_.final_output = source_->FinalOutput();
}

JobResult JobEngine::Run() {
  // Staggered initial heartbeats, then one per interval per node until the
  // job completes. Completions additionally trigger out-of-band heartbeats.
  for (int n = 0; n < cfg_.num_slaves; ++n) {
    const double offset =
        cfg_.heartbeat_sec * (n + 1) / (cfg_.num_slaves + 1);
    // Self-rescheduling periodic heartbeat.
    struct Pulse {
      JobEngine* engine;
      int node;
      void operator()() const {
        if (engine->done_) return;
        engine->Heartbeat(node);
        engine->events_.After(engine->cfg_.heartbeat_sec, Pulse{engine, node});
      }
    };
    events_.At(offset, Pulse{this, n});
  }
  events_.Run();
  HD_CHECK_MSG(done_, "event queue drained before the job completed");
  return result_;
}

}  // namespace hd::hadoop
