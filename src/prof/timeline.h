// Reader and renderer for "heterodoop.timeseries.v1" telemetry exports
// (bench `--timeseries-out`): per-series timeline tables with ASCII
// sparklines, the SLO alert log, and a steady-state comparator that lets
// `hdprof compare` diff two telemetry files directly.
//
// The wire format is JSONL: a header line ({"schema", "sample_interval_sec",
// "samples", "series", "alerts"}), one line per series ({"type":"series",
// "name", "kind", "points":[[t,v],...]}), and one line per SLO alert
// transition ({"type":"alert", "t", "rule", "state", "value"}). hdprof is
// a consumer of that wire format, so the schema string is restated here
// rather than pulling in the producer (src/trace) as a dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "prof/regress.h"

namespace hd::prof {

inline constexpr const char* kTimelineSchema = "heterodoop.timeseries.v1";

// One exported metric series: (modeled time, value) points in time order.
struct TsSeries {
  std::string name;
  std::string kind;  // "gauge" | "counter" | "rate" | "window"
  std::vector<std::pair<double, double>> points;

  double Min() const;
  double Max() const;
  double Mean() const;
  double Last() const;
  // Mean over the last half of the points — the steady-state summary the
  // timeline table and the telemetry comparator score. The front half
  // absorbs warmup/ramp so two runs of different horizons stay comparable.
  double SteadyMean() const;
};

// One SLO alert transition ("firing" or "resolved") at a sample instant.
struct TsAlert {
  double t = 0.0;
  std::string rule;
  std::string state;
  double value = 0.0;
};

struct TimeSeriesFile {
  double sample_interval_sec = 0.0;
  std::int64_t samples = 0;
  std::vector<TsSeries> series;  // export order (sorted by name)
  std::vector<TsAlert> alerts;   // time order

  // Parses a JSONL export; throws std::runtime_error on malformed lines
  // or a schema mismatch in the header.
  static TimeSeriesFile Parse(std::string_view text);
  static TimeSeriesFile Load(const std::string& path);

  const TsSeries* Find(const std::string& name) const;
};

// Cheap sniff: does the file's first line carry the timeseries schema?
// `hdprof compare` uses this to auto-detect telemetry inputs; returns
// false for unreadable files (the suite loader then reports the error).
bool IsTimeSeriesFile(const std::string& path);

// ASCII sparkline of the series values, downsampled (bucket mean over
// point index) to at most `width` columns. Constant series render flat.
std::string Sparkline(const std::vector<std::pair<double, double>>& points,
                      int width);

// Diffs the steady-state means of every shared series beyond `threshold`
// (attribution-only deltas, never scored as regressions); series present
// on one side only surface as added/removed, and a removed series fails
// the compare just like a removed benchmark.
CompareResult CompareTimeSeries(const TimeSeriesFile& before,
                                const TimeSeriesFile& after, double threshold);

}  // namespace hd::prof
