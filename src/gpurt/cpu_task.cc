#include "gpurt/cpu_task.h"

#include <cmath>

#include "common/check.h"
#include "gpurt/records.h"
#include "gpurt/sort.h"
#include "gpusim/cpu_model.h"
#include "minic/interp.h"

namespace hd::gpurt {

namespace {

// Framework-side sort cost on one core: n*log2(n) key comparisons, each
// touching the key bytes once plus branch/bookkeeping overhead.
double CpuSortSeconds(const std::vector<std::vector<KvPair>>& partitions,
                      const gpusim::CpuConfig& cpu) {
  double cycles = 0.0;
  for (const auto& part : partitions) {
    const auto n = static_cast<double>(part.size());
    if (n < 2) continue;
    double key_bytes = 0.0;
    for (const auto& kv : part) key_bytes += static_cast<double>(kv.key.size());
    key_bytes /= n;
    const double per_compare =
        key_bytes * (cpu.cycles_mem + cpu.cycles_int_alu) + 4 * cpu.cycles_branch;
    cycles += n * std::ceil(std::log2(n)) * per_compare;
  }
  return cycles / (cpu.clock_ghz * 1e9);
}

std::int64_t OutputBytes(const std::vector<std::vector<KvPair>>& partitions) {
  std::int64_t bytes = 0;
  for (const auto& part : partitions) {
    for (const auto& kv : part) {
      bytes += static_cast<std::int64_t>(kv.key.size() + kv.value.size() + 2);
    }
  }
  return bytes;
}

}  // namespace

CpuMapTask::CpuMapTask(const JobProgram& job, const gpusim::CpuConfig& cpu,
                       CpuTaskOptions options)
    : job_(job), cpu_(cpu), opts_(std::move(options)) {
  HD_CHECK_MSG(job_.map.map_plan.has_value(), "job has no mapper plan");
}

MapTaskResult CpuMapTask::Run(const std::string& file_split) {
  MapTaskResult result;
  result.stats.records =
      static_cast<std::int64_t>(LocateRecords(file_split).size());
  result.phases.input_read =
      opts_.io.ReadSeconds(static_cast<double>(file_split.size()));

  // Map: the sequential filter over the whole fileSplit.
  gpusim::CpuTimingHooks map_hooks(cpu_);
  minic::TextIoEnv map_io(file_split);
  minic::Interp map_interp(*job_.map.unit, &map_io, &map_hooks);
  map_interp.RunMain();
  std::vector<KvPair> pairs = ParseKvText(map_io.output());
  result.stats.map_kv_pairs = static_cast<std::int64_t>(pairs.size());
  // Hadoop Streaming pipes every record into the filter and every KV pair
  // back through the JVM (§2.2); the GPU path bypasses this (§5.2).
  const double streaming_overhead_sec =
      (static_cast<double>(result.stats.records) *
           cpu_.streaming_cycles_per_record +
       static_cast<double>(pairs.size()) * cpu_.streaming_cycles_per_kv) /
      (cpu_.clock_ghz * 1e9);
  result.phases.map = map_hooks.seconds() + streaming_overhead_sec;

  const bool map_only = opts_.num_reducers <= 0;
  const int num_partitions = map_only ? 1 : opts_.num_reducers;
  std::vector<std::vector<KvPair>> partitions(
      static_cast<std::size_t>(num_partitions));
  for (auto& kv : pairs) {
    const int p = map_only ? 0 : PartitionOf(kv.key, num_partitions);
    partitions[static_cast<std::size_t>(p)].push_back(std::move(kv));
  }

  if (!map_only) {
    for (auto& part : partitions) SortPairsByKey(&part);
    result.phases.sort = CpuSortSeconds(partitions, cpu_);
    result.stats.sort_elements = result.stats.map_kv_pairs;

    if (job_.has_combiner()) {
      gpusim::CpuTimingHooks comb_hooks(cpu_);
      std::int64_t out_pairs = 0;
      for (auto& part : partitions) {
        if (part.empty()) continue;
        minic::TextIoEnv comb_io(FormatKvText(part));
        minic::Interp comb_interp(*job_.combine->unit, &comb_io, &comb_hooks);
        comb_interp.RunMain();
        part = ParseKvText(comb_io.output());
        out_pairs += static_cast<std::int64_t>(part.size());
      }
      result.phases.combine = comb_hooks.seconds();
      result.stats.out_kv_pairs = out_pairs;
    } else {
      result.stats.out_kv_pairs = result.stats.map_kv_pairs;
    }
  } else {
    result.stats.out_kv_pairs = result.stats.map_kv_pairs;
  }

  result.stats.output_bytes = OutputBytes(partitions);
  const auto bytes = static_cast<double>(result.stats.output_bytes);
  result.phases.output_write = map_only ? opts_.io.HdfsWriteSeconds(bytes)
                                        : opts_.io.LocalWriteSeconds(bytes);
  result.partitions = std::move(partitions);

  if (opts_.sink != nullptr) {
    // Same canonical back-to-back layout as the GPU path: the phase-span
    // durations sum to PhaseBreakdown::Total() exactly.
    double at = opts_.trace_origin_sec;
    auto emit_phase = [&](const char* name, double dur, trace::Args args) {
      if (dur != 0.0) {
        opts_.sink->Span("phase", name, opts_.track, at, dur,
                         std::move(args));
      }
      at += dur;
    };
    emit_phase("input_read", result.phases.input_read,
               {trace::Arg::Int(
                   "bytes", static_cast<std::int64_t>(file_split.size()))});
    emit_phase("map", result.phases.map,
               {trace::Arg::Int("records", result.stats.records),
                trace::Arg::Int("map_kv_pairs", result.stats.map_kv_pairs)});
    emit_phase("sort", result.phases.sort,
               {trace::Arg::Int("sort_elements", result.stats.sort_elements)});
    emit_phase("combine", result.phases.combine,
               {trace::Arg::Int("out_kv_pairs", result.stats.out_kv_pairs)});
    emit_phase("output_write", result.phases.output_write,
               {trace::Arg::Int("output_bytes", result.stats.output_bytes)});
  }
  if (opts_.metrics != nullptr) {
    AddTaskMetrics(*opts_.metrics, result, "gpurt.cpu");
  }
  return result;
}

ReduceResult RunReduce(const minic::TranslationUnit& reduce_unit,
                       const std::vector<KvPair>& sorted_pairs,
                       const gpusim::CpuConfig& cpu) {
  gpusim::CpuTimingHooks hooks(cpu);
  minic::TextIoEnv io(FormatKvText(sorted_pairs));
  minic::Interp interp(reduce_unit, &io, &hooks);
  interp.RunMain();
  ReduceResult r;
  r.output = ParseKvText(io.output());
  r.seconds = hooks.seconds();
  return r;
}

}  // namespace hd::gpurt
