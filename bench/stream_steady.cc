// Streaming steady-state capacity: the maximum sustainable ingest rate of
// the continuous service mode (src/stream), found by an open-loop rate
// ramp over three standing pipelines with different traffic shapes, SLOs
// and backpressure policies.
//
// The knee search scales every source's mean rate by one multiplier:
// doubling until the queue-stability verdict flips, then geometric
// bisection until the unstable/stable bracket is within 20%. The knee is
// the highest stable multiplier; a confirmation probe at 1.25x the knee
// must come back unstable, so the report always brackets the capacity
// cliff. The knee configuration then re-runs with the trace sink and
// metrics registry attached — that run's per-pipeline steady-state
// latency percentiles (p50/p95/p99/p999), watermark lag and shed rate are
// the headline numbers, and two same-seed invocations reproduce them
// bit-identically.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "common/stats.h"
#include "multijob/scheduler.h"
#include "stream/engine.h"

namespace {

using hd::stream::Backpressure;
using hd::stream::PipelineMetrics;
using hd::stream::PipelineSpec;
using hd::stream::RateShape;
using hd::stream::StreamEngine;
using hd::stream::StreamMetrics;

struct ProbeSetup {
  hd::hadoop::ClusterConfig cluster;
  std::uint64_t seed = 0;
  double horizon_sec = 0.0;
  double warmup_sec = 0.0;
  // Named inter-job scheduler (--scheduler); window jobs carry deadlines,
  // so the default composes EDF over Fair.
  std::string scheduler = "slo-fair";
};

// The three standing pipelines, with every mean rate scaled by `mult`.
std::vector<PipelineSpec> MakePipelines(const ProbeSetup& s, double mult) {
  std::vector<PipelineSpec> specs(3);

  PipelineSpec& clicks = specs[0];
  clicks.label = "clicks";
  clicks.source.shape = RateShape::kPoisson;
  clicks.source.mean_rate_per_sec = 4.0 * mult;
  clicks.source.seed = hd::SplitMix64(s.seed ^ 1);
  clicks.trigger.count = 48;
  clicks.trigger.span_sec = 15.0;
  clicks.slo_sec = 40.0;

  PipelineSpec& logs = specs[1];
  logs.label = "logs";
  logs.source.shape = RateShape::kBursty;
  logs.source.mean_rate_per_sec = 2.0 * mult;
  logs.source.seed = hd::SplitMix64(s.seed ^ 2);
  logs.trigger.count = 64;
  logs.trigger.span_sec = 20.0;
  logs.slo_sec = 60.0;
  logs.pool = 1;

  PipelineSpec& sensors = specs[2];
  sensors.label = "sensors";
  sensors.source.shape = RateShape::kDiurnal;
  sensors.source.mean_rate_per_sec = 1.0 * mult;
  sensors.source.seed = hd::SplitMix64(s.seed ^ 3);
  sensors.trigger.count = 32;
  sensors.trigger.span_sec = 30.0;
  sensors.slo_sec = 90.0;
  sensors.backpressure = Backpressure::kShed;
  return specs;
}

StreamMetrics Probe(const ProbeSetup& s, double mult,
                    hd::trace::Sink* sink = nullptr,
                    hd::trace::Registry* metrics = nullptr,
                    hd::trace::TimeSeries* timeseries = nullptr) {
  hd::hadoop::ClusterConfig cfg = s.cluster;
  cfg.sink = sink;
  cfg.metrics = metrics;
  cfg.timeseries = timeseries;
  StreamEngine eng(cfg, hd::multijob::MakeScheduler(s.scheduler));
  for (PipelineSpec& spec : MakePipelines(s, mult)) {
    eng.AddPipeline(std::move(spec));
  }
  return eng.RunStream(s.horizon_sec, s.warmup_sec);
}

// Steady-state window latencies pooled across every pipeline of one probe.
std::vector<double> PooledLatencies(const StreamMetrics& sm) {
  std::vector<double> all;
  for (const PipelineMetrics& p : sm.pipelines) {
    all.insert(all.end(), p.latencies_sec.begin(), p.latencies_sec.end());
  }
  return all;
}

double WorstDepthGrowth(const StreamMetrics& sm) {
  double g = 0.0;
  for (const PipelineMetrics& p : sm.pipelines) {
    g = std::max(g, p.depth_growth);
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hd;

  bench::Reporter rep("stream_steady", argc, argv);

  ProbeSetup s;
  s.cluster.num_slaves = 8;
  s.cluster.map_slots_per_node = 4;
  s.cluster.reduce_slots_per_node = 2;
  s.cluster.gpus_per_node = 1;
  s.seed = rep.seed(20150615);  // HPDC'15
  s.horizon_sec = rep.smoke() ? 400.0 : 1500.0;
  s.warmup_sec = rep.smoke() ? 100.0 : 300.0;
  // --scheduler replaces the default slo-fair composition; unknown names
  // fail fast listing the valid ones.
  if (!rep.scheduler().empty()) s.scheduler = rep.scheduler();

  rep.Config("seed", static_cast<std::int64_t>(s.seed));
  rep.Config("num_slaves", s.cluster.num_slaves);
  rep.Config("map_slots_per_node", s.cluster.map_slots_per_node);
  rep.Config("gpus_per_node", s.cluster.gpus_per_node);
  rep.Config("horizon_sec", s.horizon_sec);
  rep.Config("warmup_sec", s.warmup_sec);
  rep.Config("scheduler", s.scheduler);
  if (rep.timeseries() != nullptr) {
    rep.Config("sample_interval_sec", rep.sample_interval_sec());
    rep.Config("timeseries_run", "overload_probe");
  }

  rep.out() << "Streaming steady-state capacity: 3 standing pipelines\n"
               "(poisson clicks + bursty logs + diurnal sensors) on 8 slaves\n"
               "x (4 CPU slots + 1 GPU), rate ramp to the stability knee.\n\n";

  auto& ramp = rep.AddTable(
      "stream_ramp",
      {"mult", "offered/s", "achieved/s", "stable", "growth", "shed", "p50 s",
       "p95 s", "p99 s", "p999 s", "lag p99 s"});
  auto probe_row = [&](double mult, const StreamMetrics& sm) {
    const std::vector<double> lat = PooledLatencies(sm);
    std::vector<double> lags;
    for (const PipelineMetrics& p : sm.pipelines) {
      lags.insert(lags.end(), p.watermark_lags_sec.begin(),
                  p.watermark_lags_sec.end());
    }
    ramp.Row()
        .Cell(mult, 3)
        .Cell(sm.OfferedQps(), 2)
        .Cell(sm.AchievedQps(), 2)
        .Cell(sm.Stable() ? "yes" : "NO")
        .Cell(WorstDepthGrowth(sm), 2)
        .Cell(sm.TotalRecordsShed())
        .Cell(stats::NearestRankPercentile(lat, 0.50), 1)
        .Cell(stats::NearestRankPercentile(lat, 0.95), 1)
        .Cell(stats::NearestRankPercentile(lat, 0.99), 1)
        .Cell(stats::NearestRankPercentile(lat, 0.999), 1)
        .Cell(stats::NearestRankPercentile(lags, 0.99), 1);
  };

  // Phase 1: bracket the knee. Double from 0.25x until the stability
  // verdict flips (halving instead if even 0.25x is already unstable).
  double lo = 0.0, hi = 0.0;
  double m = 0.25;
  for (int i = 0; i < 10; ++i) {
    const StreamMetrics sm = Probe(s, m);
    rep.AddModeledSeconds(sm.workload.makespan_sec);
    probe_row(m, sm);
    if (sm.Stable()) {
      lo = m;
      if (hi > 0.0) break;  // re-bracketed from above
      m *= 2.0;
    } else {
      hi = m;
      if (lo > 0.0) break;
      m *= 0.5;  // even the first probe was unstable: walk down
    }
  }

  // Phase 2: geometric bisection until the bracket is within 20%.
  while (lo > 0.0 && hi > 0.0 && hi / lo > 1.2) {
    m = std::sqrt(lo * hi);
    const StreamMetrics sm = Probe(s, m);
    rep.AddModeledSeconds(sm.workload.makespan_sec);
    probe_row(m, sm);
    (sm.Stable() ? lo : hi) = m;
  }

  const bool found_knee = lo > 0.0 && hi > 0.0;
  const double knee = lo;

  // Phase 3: the knee run re-executes with the registry/trace attached —
  // the headline steady-state numbers — and a confirmation probe at 1.25x
  // the knee must flip the verdict, bracketing the capacity cliff.
  StreamMetrics steady;
  bool probe_unstable = false;
  if (found_knee) {
    steady = Probe(s, knee, rep.sink(), rep.metrics());
    rep.AddModeledSeconds(steady.workload.makespan_sec);
    const double over = knee * 1.25;
    // The overload confirmation probe carries the telemetry sampler: the
    // interesting timeline is the one where the queue grows and the shed
    // budget burns, not the stable knee. The knee run keeps the registry
    // and sink so the headline steady-state numbers stay what they were.
    const StreamMetrics overload =
        Probe(s, over, nullptr, nullptr, rep.timeseries());
    rep.AddModeledSeconds(overload.workload.makespan_sec);
    probe_row(over, overload);
    probe_unstable = !overload.Stable();
    rep.Print(ramp);

    rep.out() << "\nKnee: " << steady.OfferedQps()
              << " records/s offered (mult " << knee
              << ") is the highest stable rate; the 1.25x probe is "
              << (probe_unstable ? "unstable, as expected.\n"
                                 : "UNEXPECTEDLY stable.\n");
    rep.out() << "\nSteady state at the knee, per pipeline:\n\n";
    auto& t = rep.AddTable(
        "stream_steady",
        {"pipeline", "shape", "bp", "offered/s", "windows", "empty", "shed",
         "p50 s", "p95 s", "p99 s", "p999 s", "lag p99 s", "shed%", "slo%",
         "depth"});
    for (std::size_t i = 0; i < steady.pipelines.size(); ++i) {
      const PipelineMetrics& p = steady.pipelines[i];
      const std::vector<PipelineSpec> specs = MakePipelines(s, knee);
      t.Row()
          .Cell(p.label)
          .Cell(stream::RateShapeName(specs[i].source.shape))
          .Cell(stream::BackpressureName(specs[i].backpressure))
          .Cell(p.offered_rate_per_sec, 2)
          .Cell(p.windows_sealed)
          .Cell(p.windows_empty)
          .Cell(p.windows_shed)
          .Cell(p.LatencyPercentile(0.50), 1)
          .Cell(p.LatencyPercentile(0.95), 1)
          .Cell(p.LatencyPercentile(0.99), 1)
          .Cell(p.LatencyPercentile(0.999), 1)
          .Cell(p.WatermarkLagPercentile(0.99), 1)
          .Cell(100.0 * p.ShedFraction(), 2)
          .Cell(100.0 * p.SloViolationFraction(), 2)
          .Cell(p.MeanQueueDepth(), 2);
    }
    rep.Print(t);
  } else {
    rep.Print(ramp);
    rep.out() << "\nNo knee found within the ramp bounds.\n";
  }

  rep.metrics()->gauge("stream.max_sustainable_qps")
      .Set(found_knee ? steady.OfferedQps() : 0.0);
  rep.metrics()->gauge("stream.knee_multiplier").Set(knee);
  rep.metrics()->gauge("stream.knee_stable")
      .Set(found_knee && steady.Stable() ? 1.0 : 0.0);
  rep.metrics()->gauge("stream.probe_unstable").Set(probe_unstable ? 1.0 : 0.0);

  rep.out() << "\nReading guide: 'stable' is the queue-stability verdict —\n"
               "no steady-state shedding, no ingress queue-depth growth, no\n"
               "backlog past the admission bound at the horizon. Latency is\n"
               "per window (seal -> job completion) over steady state only;\n"
               "lag is the ordered low-watermark's distance behind now at\n"
               "each completion. The knee row re-runs with identical seeds,\n"
               "so two invocations report bit-identical percentiles.\n";
  return rep.Finish();
}
