// Reproduces Fig. 5: speedup of a single data-local GPU task over a CPU
// task run by one core, for the baseline-translated code and with all
// compiler/runtime optimisations (vectorisation, texture memory, record
// stealing, KV aggregation before sort).
#include <iostream>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"

int main() {
  using namespace hd;
  std::cout << "Fig. 5: single GPU-task speedup over one CPU core\n"
            << "(split = " << bench::kMeasuredSplitBytes / 1024
            << " KiB; production fileSplits are 256 MiB)\n\n";
  Table t({"Benchmark", "Baseline x", "Optimized x", "Opt. gain"});
  std::vector<double> speedups;
  for (const auto& b : apps::AllBenchmarks()) {
    bench::MeasureConfig cfg;
    const bench::MeasuredTask m = bench::MeasureTask(b, cfg);
    t.Row()
        .Cell(b.id)
        .Cell(m.BaselineSpeedup(), 2)
        .Cell(m.Speedup(), 2)
        .Cell(m.GpuBaselineSec() / m.GpuSec(), 2);
    speedups.push_back(m.Speedup());
  }
  t.Print(std::cout);
  std::cout << "\nGeometric-mean optimized task speedup: "
            << FormatDouble(bench::GeoMean(speedups), 2)
            << "x (paper: up to 47x for BS; IO-intensive apps lowest)\n";
  return 0;
}
