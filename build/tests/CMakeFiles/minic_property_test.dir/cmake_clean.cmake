file(REMOVE_RECURSE
  "CMakeFiles/minic_property_test.dir/minic_property_test.cc.o"
  "CMakeFiles/minic_property_test.dir/minic_property_test.cc.o.d"
  "minic_property_test"
  "minic_property_test.pdb"
  "minic_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
