# Empty compiler generated dependencies file for micro_minic.
# This may be replaced when dependencies are built.
