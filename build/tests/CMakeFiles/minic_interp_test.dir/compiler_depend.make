# Empty compiler generated dependencies file for minic_interp_test.
# This may be replaced when dependencies are built.
