file(REMOVE_RECURSE
  "CMakeFiles/gpurt_test.dir/gpurt_test.cc.o"
  "CMakeFiles/gpurt_test.dir/gpurt_test.cc.o.d"
  "gpurt_test"
  "gpurt_test.pdb"
  "gpurt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpurt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
