#include "stream/pipeline.h"

#include "common/check.h"
#include "common/stats.h"

namespace hd::stream {

const char* BackpressureName(Backpressure b) {
  switch (b) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kShed: return "shed";
  }
  return "?";
}

void ValidatePipelineSpec(const PipelineSpec& spec) {
  HD_CHECK_MSG(!spec.label.empty(), "pipeline label must be non-empty");
  ValidateSourceSpec(spec.source);
  HD_CHECK_MSG(spec.trigger.count >= 1, "window count trigger must be >= 1");
  HD_CHECK_MSG(spec.trigger.span_sec > 0.0, "window span must be positive");
  HD_CHECK_MSG(spec.job.records_per_map >= 1, "records per map must be >= 1");
  HD_CHECK_MSG(spec.job.num_reducers >= 0, "reducer count must be >= 0");
  HD_CHECK_MSG(spec.job.cpu_task_sec > 0.0, "CPU task time must be positive");
  HD_CHECK_MSG(spec.job.gpu_task_sec > 0.0, "GPU task time must be positive");
  HD_CHECK_MSG(spec.job.variation >= 0.0, "task variation must be >= 0");
  HD_CHECK_MSG(spec.job.map_output_bytes >= 0,
               "map output bytes must be >= 0");
  HD_CHECK_MSG(spec.job.reduce_sec >= 0.0, "reduce time must be >= 0");
  HD_CHECK_MSG(spec.slo_sec > 0.0, "SLO must be positive");
  HD_CHECK_MSG(spec.max_inflight_windows >= 1,
               "at least one window must be admitted in flight");
  HD_CHECK_MSG(spec.max_pending_windows >= 0,
               "pending-window bound must be >= 0");
  HD_CHECK_MSG(
      spec.shed_budget_fraction > 0.0 && spec.shed_budget_fraction <= 1.0,
      "shed budget fraction must be in (0, 1]");
  HD_CHECK_MSG(
      spec.miss_budget_fraction > 0.0 && spec.miss_budget_fraction <= 1.0,
      "miss budget fraction must be in (0, 1]");
}

double PipelineMetrics::LatencyPercentile(double q) const {
  return stats::NearestRankPercentile(latencies_sec, q);
}

double PipelineMetrics::WatermarkLagPercentile(double q) const {
  return stats::NearestRankPercentile(watermark_lags_sec, q);
}

double PipelineMetrics::MeanQueueDepth() const {
  return stats::Mean(queue_depths);
}

double PipelineMetrics::ShedFraction() const {
  if (records_arrived == 0) return 0.0;
  return static_cast<double>(records_shed) /
         static_cast<double>(records_arrived);
}

double PipelineMetrics::SloViolationFraction() const {
  if (latencies_sec.empty()) return 0.0;
  return static_cast<double>(slo_violations) /
         static_cast<double>(latencies_sec.size());
}

}  // namespace hd::stream
