// Movie analytics on a heterogeneous cluster: runs the histratings job
// (PUMA) over an HDFS-resident ratings dataset on a simulated 4-node
// CPU+GPU cluster, comparing all three scheduling policies, and prints the
// final rating histogram.
//
// Demonstrates: HDFS ingestion + locality-aware scheduling, the functional
// cluster engine, tail scheduling, and fault-free end-to-end output.
//
// Build & run:  cmake --build build && ./build/examples/movie_analytics
#include <iostream>

#include "apps/benchmark.h"
#include "common/table.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

int main() {
  using namespace hd;
  using sched::Policy;

  const apps::Benchmark& hr = apps::GetBenchmark("HR");
  gpurt::JobProgram job =
      gpurt::CompileJob(hr.map_source, hr.combine_source, hr.reduce_source);

  // Ingest 8 fileSplits of synthetic ratings into a 4-DataNode HDFS.
  hdfs::Hdfs fs(4, hdfs::HdfsConfig{.block_size = 1 << 20, .replication = 2});
  std::vector<std::string> splits;
  for (int i = 0; i < 8; ++i) splits.push_back(hr.generate(20000, 42 + i));
  fs.PutFile("/data/ratings", splits);
  std::cout << "Ingested " << fs.NumSplits("/data/ratings") << " splits, "
            << fs.TotalBytes("/data/ratings") << " bytes into HDFS\n\n";

  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 4;
  cluster.map_slots_per_node = 2;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.heartbeat_sec = 0.05;

  Table t({"Policy", "Makespan (s)", "CPU tasks", "GPU tasks", "Non-local"});
  std::vector<gpurt::KvPair> histogram;
  for (Policy policy : {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
    hadoop::FunctionalTaskSource::Options fopts;
    fopts.num_reducers = hr.num_reducers();
    hadoop::FunctionalTaskSource source(job, fs, "/data/ratings", fopts);
    hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source, policy, &fs, "/data/ratings")
            .Run();
    t.Row()
        .Cell(sched::PolicyName(policy))
        .Cell(r.makespan_sec, 4)
        .Cell(r.cpu_tasks)
        .Cell(r.gpu_tasks)
        .Cell(r.nonlocal_tasks);
    histogram = r.final_output;
  }
  t.Print(std::cout);

  std::cout << "\nRating histogram (from the tail-scheduled run):\n";
  std::sort(histogram.begin(), histogram.end(),
            [](const gpurt::KvPair& a, const gpurt::KvPair& b) {
              return a.key < b.key;
            });
  for (const auto& kv : histogram) {
    const long n = std::stol(kv.value);
    std::cout << "  " << kv.key << " stars: " << kv.value << "  "
              << std::string(static_cast<std::size_t>(n / 800), '#') << "\n";
  }

  // Sanity: the histogram must match the native reference implementation.
  const std::string diff =
      apps::CompareWithGolden(hr, hr.golden(splits), histogram);
  std::cout << (diff.empty() ? "\nMatches the golden reference.\n"
                             : "\nMISMATCH: " + diff + "\n");
  return diff.empty() ? 0 : 1;
}
