file(REMOVE_RECURSE
  "libhd_sched.a"
)
