#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "hadoop/engine.h"
#include "hadoop/functional_source.h"
#include "hadoop/task_source.h"

namespace hd::hadoop {
namespace {

using sched::Policy;

CalibratedTaskSource::Params BaseParams() {
  CalibratedTaskSource::Params p;
  p.num_maps = 64;
  p.num_reducers = 2;
  p.cpu_task_sec = 12.0;
  p.gpu_task_sec = 2.0;  // 6x speedup
  p.variation = 0.0;
  p.map_output_bytes = 1 << 20;
  p.reduce_sec = 1.0;
  return p;
}

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  return c;
}

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.At(2.0, [&] { order.push_back(2); });
  q.At(1.0, [&] { order.push_back(1); });
  q.At(1.0, [&] { order.push_back(11); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, PastEventRejected) {
  EventQueue q;
  q.At(5.0, [] {});
  q.Step();
  EXPECT_THROW(q.At(1.0, [] {}), CheckError);
}

TEST(Calibrated, DeterministicAndScaled) {
  CalibratedTaskSource::Params p = BaseParams();
  p.variation = 0.2;
  CalibratedTaskSource a(p), b(p);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.MapTask(i, false).seconds, b.MapTask(i, false).seconds);
    // Same per-task factor on both paths: GPU/CPU ratio is constant.
    EXPECT_NEAR(a.MapTask(i, false).seconds / a.MapTask(i, true).seconds,
                6.0, 1e-9);
  }
}

TEST(Calibrated, UnsupportedGpuThrows) {
  CalibratedTaskSource::Params p = BaseParams();
  p.gpu_supported = false;
  CalibratedTaskSource src(p);
  EXPECT_THROW(src.MapTask(0, true), GpuTaskFailure);
  EXPECT_NO_THROW(src.MapTask(0, false));
}

TEST(Engine, CpuOnlyUsesNoGpus) {
  CalibratedTaskSource src(BaseParams());
  JobEngine engine(SmallCluster(), &src, Policy::kCpuOnly);
  JobResult r = engine.Run();
  EXPECT_EQ(r.gpu_tasks, 0);
  EXPECT_EQ(r.cpu_tasks, 64);
  EXPECT_GT(r.makespan_sec, 0.0);
  // 64 tasks / 8 CPU slots = 8 waves of 12s plus scheduling latency.
  EXPECT_GE(r.makespan_sec, 8 * 12.0);
  EXPECT_LT(r.makespan_sec, 8 * 12.0 + 40.0);
}

TEST(Engine, GpuFirstBeatsCpuOnly) {
  CalibratedTaskSource src1(BaseParams()), src2(BaseParams());
  JobResult cpu_only =
      JobEngine(SmallCluster(), &src1, Policy::kCpuOnly).Run();
  JobResult gpu_first =
      JobEngine(SmallCluster(), &src2, Policy::kGpuFirst).Run();
  EXPECT_GT(gpu_first.gpu_tasks, 0);
  EXPECT_EQ(gpu_first.gpu_tasks + gpu_first.cpu_tasks, 64);
  EXPECT_LT(gpu_first.makespan_sec, cpu_only.makespan_sec);
}

TEST(Engine, TailBeatsGpuFirstOnFig3LikeScenario) {
  // Fig. 3: one slave with 2 CPU slots and 1 GPU (6x), 19 tasks.
  CalibratedTaskSource::Params p = BaseParams();
  p.num_maps = 19;
  p.num_reducers = 0;
  p.cpu_task_sec = 12.0;
  p.gpu_task_sec = 2.0;
  ClusterConfig c;
  c.num_slaves = 1;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 0.2;
  CalibratedTaskSource src1(p), src2(p);
  JobResult gpu_first = JobEngine(c, &src1, Policy::kGpuFirst).Run();
  JobResult tail = JobEngine(c, &src2, Policy::kTail).Run();
  EXPECT_LT(tail.makespan_sec, gpu_first.makespan_sec);
  EXPECT_GT(tail.gpu_tasks, gpu_first.gpu_tasks);
}

TEST(Engine, TailNeverMuchWorseThanGpuFirst) {
  for (double gpu_sec : {1.0, 3.0, 6.0, 12.0}) {
    CalibratedTaskSource::Params p = BaseParams();
    p.gpu_task_sec = gpu_sec;
    CalibratedTaskSource src1(p), src2(p);
    JobResult gpu_first =
        JobEngine(SmallCluster(), &src1, Policy::kGpuFirst).Run();
    JobResult tail = JobEngine(SmallCluster(), &src2, Policy::kTail).Run();
    EXPECT_LE(tail.makespan_sec, gpu_first.makespan_sec * 1.10)
        << "gpu_task_sec=" << gpu_sec;
  }
}

TEST(Engine, SpeedupObservedConvergesToTruth) {
  CalibratedTaskSource src(BaseParams());
  JobResult r = JobEngine(SmallCluster(), &src, Policy::kGpuFirst).Run();
  EXPECT_NEAR(r.max_observed_speedup, 6.0, 0.5);
}

TEST(Engine, GpuFailuresFallBackToCpu) {
  CalibratedTaskSource::Params p = BaseParams();
  p.gpu_supported = false;
  CalibratedTaskSource src(p);
  JobResult r = JobEngine(SmallCluster(), &src, Policy::kGpuFirst).Run();
  EXPECT_GT(r.gpu_failures, 0);
  EXPECT_EQ(r.gpu_tasks, 0);
  EXPECT_EQ(r.cpu_tasks, 64);
}

TEST(Engine, ReduceExtendsMakespan) {
  CalibratedTaskSource::Params p = BaseParams();
  p.reduce_sec = 30.0;
  CalibratedTaskSource src(p);
  JobResult r = JobEngine(SmallCluster(), &src, Policy::kGpuFirst).Run();
  EXPECT_GT(r.makespan_sec, r.map_phase_end_sec + 29.0);
}

TEST(Engine, MapOnlyJobEndsWithMaps) {
  CalibratedTaskSource::Params p = BaseParams();
  p.num_reducers = 0;
  CalibratedTaskSource src(p);
  JobResult r = JobEngine(SmallCluster(), &src, Policy::kGpuFirst).Run();
  EXPECT_DOUBLE_EQ(r.makespan_sec, r.map_phase_end_sec);
}

TEST(Engine, LocalityPreferredWhenHdfsAttached) {
  CalibratedTaskSource::Params p = BaseParams();
  p.num_maps = 32;
  CalibratedTaskSource src(p);
  hdfs::Hdfs fs(4, hdfs::HdfsConfig{.block_size = 1 << 20, .replication = 3});
  fs.PutSyntheticFile("/in", 32, 1 << 20);
  ClusterConfig c = SmallCluster();
  JobEngine engine(c, &src, Policy::kGpuFirst, &fs, "/in");
  JobResult r = engine.Run();
  // With replication 3 over 4 nodes most tasks should be data-local.
  EXPECT_LT(r.nonlocal_tasks, 8);
}

TEST(Engine, SplitCountMismatchRejected) {
  CalibratedTaskSource src(BaseParams());  // 64 maps
  hdfs::Hdfs fs(4, hdfs::HdfsConfig{});
  fs.PutSyntheticFile("/in", 10, 1 << 20);
  EXPECT_THROW(
      JobEngine(SmallCluster(), &src, Policy::kGpuFirst, &fs, "/in"),
      CheckError);
}

TEST(Engine, MoreGpusShortenJob) {
  double prev = 1e30;
  for (int gpus : {1, 2, 3}) {
    CalibratedTaskSource::Params p = BaseParams();
    p.num_maps = 128;
    CalibratedTaskSource src(p);
    ClusterConfig c = SmallCluster();
    c.gpus_per_node = gpus;
    JobResult r = JobEngine(c, &src, Policy::kTail).Run();
    EXPECT_LT(r.makespan_sec, prev) << gpus << " GPUs";
    prev = r.makespan_sec;
  }
}

TEST(Engine, HeterogeneousNodesSlowTheJobProportionally) {
  // Extension (paper 9 future work): per-node speed factors.
  CalibratedTaskSource::Params p = BaseParams();
  p.num_reducers = 0;
  CalibratedTaskSource fast_src(p), mixed_src(p);
  ClusterConfig fast = SmallCluster();
  JobResult r_fast = JobEngine(fast, &fast_src, Policy::kCpuOnly).Run();
  ClusterConfig mixed = SmallCluster();
  mixed.node_speed_factors = {1.0, 1.0, 2.0, 2.0};  // half the nodes at 2x
  JobResult r_mixed = JobEngine(mixed, &mixed_src, Policy::kCpuOnly).Run();
  EXPECT_GT(r_mixed.makespan_sec, r_fast.makespan_sec * 1.15);
  EXPECT_LT(r_mixed.makespan_sec, r_fast.makespan_sec * 2.1);
  EXPECT_EQ(r_mixed.cpu_tasks, 64);
}

TEST(Engine, HeterogeneityStillBenefitsFromGpus) {
  CalibratedTaskSource::Params p = BaseParams();
  CalibratedTaskSource src1(p), src2(p);
  ClusterConfig c = SmallCluster();
  c.node_speed_factors = {1.0, 1.5, 2.0, 3.0};
  JobResult cpu_only = JobEngine(c, &src1, Policy::kCpuOnly).Run();
  JobResult tail = JobEngine(c, &src2, Policy::kTail).Run();
  EXPECT_LT(tail.makespan_sec, cpu_only.makespan_sec);
}

TEST(Engine, TraceRecordsSchedule) {
  CalibratedTaskSource::Params p = BaseParams();
  p.num_maps = 4;
  p.num_reducers = 0;
  CalibratedTaskSource src(p);
  ClusterConfig c = SmallCluster();
  std::ostringstream trace;
  c.trace = &trace;
  JobEngine(c, &src, Policy::kGpuFirst).Run();
  const std::string t = trace.str();
  // 4 starts + 4 finishes, each tagged with a processor.
  EXPECT_EQ(std::count(t.begin(), t.end(), '\n'), 8);
  EXPECT_NE(t.find(" GPU"), std::string::npos);
  EXPECT_NE(t.find("start task=0"), std::string::npos);
  EXPECT_NE(t.find("finish task=3"), std::string::npos);
}

TEST(Engine, InvalidClusterConfigRejected) {
  CalibratedTaskSource src(BaseParams());
  auto reject = [&](void (*mutate)(ClusterConfig&)) {
    ClusterConfig c = SmallCluster();
    mutate(c);
    EXPECT_THROW(JobEngine(c, &src, Policy::kCpuOnly), CheckError);
  };
  reject([](ClusterConfig& c) { c.num_slaves = 0; });
  reject([](ClusterConfig& c) { c.map_slots_per_node = 0; });
  reject([](ClusterConfig& c) { c.reduce_slots_per_node = -1; });
  reject([](ClusterConfig& c) { c.gpus_per_node = -1; });
  reject([](ClusterConfig& c) { c.heartbeat_sec = 0.0; });
  reject([](ClusterConfig& c) { c.heartbeat_sec = -3.0; });
  reject([](ClusterConfig& c) { c.network_bytes_per_sec = 0.0; });
  reject([](ClusterConfig& c) { c.reduce_slowstart = -0.1; });
  reject([](ClusterConfig& c) { c.reduce_slowstart = 1.5; });
  // The defaults (and the test cluster) validate cleanly.
  EXPECT_NO_THROW(ValidateClusterConfig(SmallCluster()));
  EXPECT_NO_THROW(ValidateClusterConfig(ClusterConfig{}));
}

// A misconfigured cluster reports EVERY violation in one error, so a
// sweep with several bad fields surfaces all of them in a single run.
TEST(Engine, ValidateReportsAllViolationsAtOnce) {
  ClusterConfig c = SmallCluster();
  c.num_slaves = 0;
  c.heartbeat_sec = -3.0;
  c.reduce_slowstart = 1.5;
  c.des_backend = "splay";
  try {
    ValidateClusterConfig(c);
    FAIL() << "invalid config accepted";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("4 violations"), std::string::npos) << msg;
    EXPECT_NE(msg.find("at least one slave"), std::string::npos) << msg;
    EXPECT_NE(msg.find("heartbeat_sec"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reduce_slowstart"), std::string::npos) << msg;
    // The unknown backend is named, and the valid options are listed.
    EXPECT_NE(msg.find("splay"), std::string::npos) << msg;
    EXPECT_NE(msg.find("calendar"), std::string::npos) << msg;
  }
}

TEST(Engine, BadSpeedFactorsRejected) {
  CalibratedTaskSource src(BaseParams());
  ClusterConfig c = SmallCluster();
  c.node_speed_factors = {1.0, 2.0};  // wrong arity for 4 slaves
  EXPECT_THROW(JobEngine(c, &src, Policy::kCpuOnly), CheckError);
  c.node_speed_factors = {1.0, 1.0, 0.0, 1.0};
  EXPECT_THROW(JobEngine(c, &src, Policy::kCpuOnly), CheckError);
}

// --- functional cluster run -------------------------------------------------

constexpr const char* kWcMap = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i]; i++; j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0; offset = 0; one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kWcCombine = R"(
int main() {
  char word[30], prevWord[30];
  int count, val, read;
  prevWord[0] = '\0';
  count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) keyin(word) \
    valuein(val) keylength(30) vallength(1) firstprivate(prevWord, count)
  {
    while ((read = scanf("%s %d", word, &val)) == 2) {
      if (strcmp(word, prevWord) == 0) { count += val; }
      else {
        if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
)";

constexpr const char* kWcReduce = R"(
int main() {
  char word[30], prevWord[30];
  int count, val;
  prevWord[0] = '\0';
  count = 0;
  while (scanf("%s %d", word, &val) == 2) {
    if (strcmp(word, prevWord) == 0) { count += val; }
    else {
      if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
      strcpy(prevWord, word);
      count = val;
    }
  }
  if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  return 0;
}
)";

TEST(FunctionalCluster, WordcountEndToEnd) {
  gpurt::JobProgram job = gpurt::CompileJob(kWcMap, kWcCombine, kWcReduce);
  std::vector<std::string> splits = {
      "the cat sat\n", "on the mat\n", "the dog ate\n", "the bone now\n",
      "cat and dog\n", "mat and bone\n"};
  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 2;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;

  std::map<std::string, long> expect = {
      {"the", 4}, {"cat", 2}, {"sat", 1}, {"on", 1},  {"mat", 2},
      {"dog", 2}, {"ate", 1}, {"bone", 2}, {"now", 1}, {"and", 2}};

  for (Policy policy : {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
    FunctionalTaskSource source(job, splits, fopts);
    ClusterConfig c;
    c.num_slaves = 2;
    c.map_slots_per_node = 2;
    c.gpus_per_node = 1;
    c.heartbeat_sec = 0.01;
    JobResult r = JobEngine(c, &source, policy).Run();
    std::map<std::string, long> got;
    for (const auto& kv : r.final_output) got[kv.key] += std::stol(kv.value);
    EXPECT_EQ(got, expect) << sched::PolicyName(policy);
    EXPECT_EQ(r.cpu_tasks + r.gpu_tasks, 6) << sched::PolicyName(policy);
    if (policy != Policy::kCpuOnly) {
      EXPECT_GT(r.gpu_tasks, 0) << sched::PolicyName(policy);
    }
  }
}

TEST(FunctionalCluster, HdfsBackedRunMatchesInMemory) {
  gpurt::JobProgram job = gpurt::CompileJob(kWcMap, kWcCombine, kWcReduce);
  std::vector<std::string> splits = {"alpha beta\n", "beta gamma\n",
                                     "gamma alpha\n", "alpha beta gamma\n"};
  hdfs::Hdfs fs(2, hdfs::HdfsConfig{.block_size = 1 << 20, .replication = 2});
  fs.PutFile("/wc", splits);
  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 1;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;
  FunctionalTaskSource hdfs_src(job, fs, "/wc", fopts);
  FunctionalTaskSource mem_src(job, splits, fopts);
  ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 0.01;
  auto r1 = JobEngine(c, &hdfs_src, Policy::kGpuFirst, &fs, "/wc").Run();
  auto r2 = JobEngine(c, &mem_src, Policy::kGpuFirst).Run();
  EXPECT_EQ(r1.final_output, r2.final_output);
}

// Batched heartbeats change the event shape (one cluster-wide pulse
// instead of per-tracker chains) but must not change what the job
// computes: the final output is identical either way.
TEST(FunctionalCluster, BatchedHeartbeatsComputeIdenticalOutput) {
  gpurt::JobProgram job = gpurt::CompileJob(kWcMap, kWcCombine, kWcReduce);
  std::vector<std::string> splits = {"alpha beta\n", "beta gamma\n",
                                     "gamma alpha\n", "alpha beta gamma\n"};
  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 2;
  FunctionalTaskSource src_chained(job, splits, fopts);
  FunctionalTaskSource src_batched(job, splits, fopts);
  ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 0.01;
  c.batch_heartbeats = false;
  auto chained = JobEngine(c, &src_chained, Policy::kGpuFirst).Run();
  c.batch_heartbeats = true;
  auto batched = JobEngine(c, &src_batched, Policy::kGpuFirst).Run();
  EXPECT_EQ(chained.final_output, batched.final_output);
  EXPECT_EQ(chained.cpu_tasks + chained.gpu_tasks,
            batched.cpu_tasks + batched.gpu_tasks);
}

TEST(FunctionalCluster, GpuOomFallsBackAndStillCorrect) {
  gpurt::JobProgram job = gpurt::CompileJob(kWcMap, kWcCombine, kWcReduce);
  std::vector<std::string> splits = {"aa bb\n", "bb cc\n"};
  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 1;
  fopts.device.global_mem_bytes = 64;  // everything OOMs on the GPU
  FunctionalTaskSource source(job, splits, fopts);
  ClusterConfig c;
  c.num_slaves = 1;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 0.01;
  JobResult r = JobEngine(c, &source, Policy::kGpuFirst).Run();
  EXPECT_GT(r.gpu_failures, 0);
  EXPECT_EQ(r.gpu_tasks, 0);
  std::map<std::string, long> got;
  for (const auto& kv : r.final_output) got[kv.key] += std::stol(kv.value);
  EXPECT_EQ(got["bb"], 2);
}

}  // namespace
}  // namespace hd::hadoop
