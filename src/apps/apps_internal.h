// Internal: per-application factories assembled by the registry.
#pragma once

#include "apps/benchmark.h"

namespace hd::apps {

Benchmark MakeGrep();            // GR
Benchmark MakeHistMovies();      // HS
Benchmark MakeWordcount();       // WC
Benchmark MakeHistRatings();     // HR
Benchmark MakeLinearRegression();  // LR
Benchmark MakeKmeans();          // KM
Benchmark MakeClassification();  // CL
Benchmark MakeBlackScholes();    // BS

}  // namespace hd::apps
