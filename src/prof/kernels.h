// Per-kernel hardware-counter aggregation over "kernel" spans.
//
// The gpurt host driver emits one "kernel" span per launch, carrying the
// gpusim KernelReport counters as args (cycles, DRAM transactions,
// divergence, coalescing, bank/atomic conflicts, texture hit rate). This
// module folds every launch of the same kernel name into one KernelStats
// row, ranks the rows by total modeled time (the top-N hotspot list) and
// classifies each kernel's roofline regime from the cycle components the
// analytic timing model already exposes: DRAM-bound when the bandwidth
// roof dominates, compute-bound when issue cycles do, latency-bound
// otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/trace_file.h"

namespace hd::prof {

struct KernelStats {
  std::string name;
  int launches = 0;
  double total_sec = 0.0;

  // Summed cycle components from the timing model.
  double device_cycles = 0.0;
  double compute_cycles = 0.0;
  double mem_cycles = 0.0;
  double dram_roof_cycles = 0.0;

  // Summed hardware counters.
  std::int64_t transactions = 0;
  std::int64_t bytes_moved = 0;
  std::int64_t mem_requests = 0;
  std::int64_t bytes_requested = 0;
  std::int64_t shared_accesses = 0;
  std::int64_t shared_bank_conflicts = 0;
  std::int64_t atomic_conflicts = 0;

  // Time-weighted sums for ratio counters (weight = launch elapsed sec).
  double divergence_weighted = 0.0;
  double texture_hit_weighted = 0.0;
  double texture_weight = 0.0;  // only launches that touched the texture

  // Aggregated ratios (same definitions as gpusim::KernelReport).
  double Divergence() const {
    return total_sec == 0.0 ? 0.0 : divergence_weighted / total_sec;
  }
  double Coalescing() const {
    return bytes_moved == 0 ? 1.0
                            : static_cast<double>(bytes_requested) /
                                  static_cast<double>(bytes_moved);
  }
  double TransactionsPerRequest() const {
    return mem_requests == 0 ? 0.0
                             : static_cast<double>(transactions) /
                                   static_cast<double>(mem_requests);
  }
  double TextureHitRate() const {
    return texture_weight == 0.0 ? 0.0
                                 : texture_hit_weighted / texture_weight;
  }
  // "dram" | "compute" | "latency": which cycle component dominates.
  std::string Bound() const;
};

struct KernelProfile {
  std::vector<KernelStats> kernels;  // sorted by total_sec, descending
  double total_sec = 0.0;            // across every kernel launch
};

// Aggregates every "kernel" span in the trace. Stable output order: by
// total time descending, ties by name.
KernelProfile ProfileKernels(const TraceFile& trace);

}  // namespace hd::prof
