// Console table printer used by the bench harnesses to emit paper-style
// tables and figure series.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hd {

// Accumulates rows of string cells and prints them as an aligned ASCII
// table. Numeric convenience overloads format through FormatDouble.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Begins a new row; cells are appended with Cell().
  Table& Row();
  Table& Cell(std::string v);
  Table& Cell(const char* v);
  Table& Cell(double v, int precision = 2);
  Table& Cell(std::uint64_t v);
  Table& Cell(std::int64_t v);
  Table& Cell(int v);

  // Prints the table with a rule under the header.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hd
